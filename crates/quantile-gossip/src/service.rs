//! Batched multi-query quantile service with incremental recompute.
//!
//! [`QuantileService`] answers a *vector* of `(φ, ε)` queries over the same
//! `n` holders through **shared** tournament rounds: every gossip contact
//! carries one comparison value per query ("lane"), so `q` queries cost one
//! engine round sequence of length `max_i(2·t1ᵢ) + max_i(3·t2ᵢ + K)` instead
//! of `Σᵢ (2·t1ᵢ + 3·t2ᵢ + K)` — a `~q×` round amortisation over running
//! [`crate::approx::tournament_quantile`] once per query (Theorems 1.2/1.3:
//! the per-query amortised round cost drops from `O(log log n + log 1/ε)` to
//! `O((log log n + log 1/ε)/q)` as long as the `O(q log n)`-bit payload is
//! acceptable; [`Metrics::mean_bits_per_node_round`] reports exactly that
//! payload cost).
//!
//! **Bit-identity.** Both tournament phases key every draw purely by
//! `(seed, round, node)` on dedicated RNG streams, and each solo iteration
//! occupies a fixed window of rounds (two in Phase I, three in Phase II, `K`
//! vote rounds after convergence). Lane `i` of the batched run therefore
//! replays query `i`'s solo trajectory *exactly*: the service derives the two
//! phase engines from the same [`SeedSequence`] protocol as
//! [`crate::approx::tournament_quantile`], executes the union of every lane's
//! round schedule, and applies each lane's own update rule to its component
//! of the shared state vector. The answers are bit-identical to `q`
//! independent runs on the same [`EngineConfig`] seed — the conformance
//! suite in `tests/service.rs` pins this on every topology and under a
//! disruptive [`gossip_net::FaultPlan`].
//!
//! **Incremental recompute.** Holders ingest new values between epochs
//! ([`QuantileService::ingest`]), summarised per holder by the
//! [`CompactorSketch`] of Appendix A (the holder gossips its sketch median).
//! Contact patterns are epoch-invariant — every draw (targets, participation
//! coins, fault outcomes) is keyed purely by `(seed, round, node)` — so the
//! full recompute records the *realised* pull source of every node in every
//! round alongside the per-iteration state snapshots. An incremental
//! [`QuantileService::epoch`] then needs no engine at all: it replays the
//! cached trajectory as a pure dataflow over that realised contact graph,
//! touching per round only the nodes whose own state or realised source is
//! dirty and pruning nodes whose recomputed state matches the cache. The
//! epoch reports the cached logical round and traffic cost (the network
//! cost of the trajectory is unchanged — only the service-side wall-clock
//! shrinks with the dirty closure). When the dirty fraction exceeds
//! [`ServiceConfig::dirty_threshold`] the service recomputes from scratch
//! instead, refreshing the cache. Either way the answers equal a
//! from-scratch [`recompute_full`] (`tests/service.rs` pins exact
//! equality).
//!
//! [`recompute_full`]: QuantileService::recompute_full

use crate::approx::MAX_TOURNAMENT_EPSILON;
use crate::schedule::{ShrinkSide, ThreeTournamentSchedule, TwoTournamentSchedule};
use crate::three_tournament::{median3, FinalVote};
use crate::two_tournament::extremum;
use baselines::CompactorSketch;
use gossip_net::{
    par, ActiveSet, Engine, EngineConfig, GossipError, LaneMatrix, MessageSize, Metrics, NodeRng,
    NodeValue, Result, SeedSequence, WorkerPool,
};
use std::sync::Arc;
use std::time::Instant;

/// One `(φ, ε)` quantile query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileQuery {
    /// The target quantile `φ ∈ [0, 1]`.
    pub phi: f64,
    /// The rank accuracy `ε > 0` (clamped to [`MAX_TOURNAMENT_EPSILON`] like
    /// [`crate::approx::tournament_quantile`]).
    pub epsilon: f64,
}

impl QuantileQuery {
    /// Convenience constructor.
    pub fn new(phi: f64, epsilon: f64) -> Self {
        QuantileQuery { phi, epsilon }
    }
}

/// Configuration of a [`QuantileService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The final `K`-sample vote shared by every lane (Algorithm 2, line 8).
    pub final_vote: FinalVote,
    /// Dirty-holder fraction above which [`QuantileService::epoch`] abandons
    /// incremental replay and recomputes from scratch.
    pub dirty_threshold: f64,
    /// Capacity of each holder's ingestion [`CompactorSketch`].
    pub sketch_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            final_vote: FinalVote::default(),
            dirty_threshold: 0.25,
            sketch_capacity: 32,
        }
    }
}

/// Per-query round accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Phase I iterations of this query's solo schedule (`t` of Lemma 2.2).
    pub phase1_iterations: usize,
    /// Phase II iterations of this query's solo schedule (`t` of Lemma 2.12).
    pub phase2_iterations: usize,
    /// Rounds a solo [`crate::approx::tournament_quantile`] run would spend on
    /// this query: `2·t1 + 3·t2 + K`.
    pub solo_rounds: u64,
}

/// How an epoch was answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EpochMode {
    /// Full recompute of every lane from the current inputs.
    Full,
    /// Sparse replay of the cached trajectory on the dirty closure only.
    Incremental {
        /// Holders whose effective value changed since the cached epoch.
        dirty_nodes: usize,
        /// `dirty_nodes / n`.
        dirty_fraction: f64,
    },
}

/// Wall-clock breakdown of one epoch, by pipeline stage.
///
/// Full epochs fill the collect / apply / record / vote stages; incremental
/// epochs fill replay (the engine-free dataflow over the cached trajectory)
/// and vote (the output patch). Purely observational — timings are never
/// part of answer equality, and the unfilled stages of a mode stay `0.0`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochTimings {
    /// Seconds collecting lane samples (engine pull rounds, including
    /// participation coins and δ-cut active sets).
    pub collect_secs: f64,
    /// Seconds applying lane steps to the shared state vector.
    pub apply_secs: f64,
    /// Seconds recording the replay cache (state snapshots and realised
    /// sources).
    pub record_secs: f64,
    /// Seconds deriving or patching the per-lane vote outputs.
    pub vote_secs: f64,
    /// Seconds replaying the cached dataflow (incremental epochs only).
    pub replay_secs: f64,
}

/// Result of one [`QuantileService::epoch`].
#[derive(Debug, Clone)]
pub struct ServiceOutcome<V> {
    /// `answers[i][v]`: node `v`'s answer to query `i` — bit-identical to the
    /// output of a solo [`crate::approx::tournament_quantile`] run for query
    /// `i` on the same seed.
    pub answers: Vec<Vec<V>>,
    /// Engine rounds executed this epoch (both phases plus the vote).
    pub rounds: u64,
    /// Aggregated communication metrics of this epoch
    /// ([`Metrics::mean_bits_per_node_round`] gives the payload cost of
    /// batching).
    pub metrics: Metrics,
    /// Per-query solo-run costs, for amortisation accounting.
    pub per_query: Vec<QueryCost>,
    /// Whether this epoch ran fully or incrementally.
    pub mode: EpochMode,
    /// Wall-clock breakdown of the epoch's pipeline stages.
    pub timings: EpochTimings,
}

impl<V> ServiceOutcome<V> {
    /// Round amortisation of batching: `Σᵢ solo_rounds(i) / rounds`. With `q`
    /// similar queries this approaches `q`.
    pub fn amortisation(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        let solo: u64 = self.per_query.iter().map(|c| c.solo_rounds).sum();
        solo as f64 / self.rounds as f64
    }
}

/// The per-query schedules (computed once at construction).
#[derive(Debug, Clone)]
struct LanePlan {
    schedule1: TwoTournamentSchedule,
    schedule2: ThreeTournamentSchedule,
}

impl LanePlan {
    fn t1(&self) -> usize {
        self.schedule1.len()
    }
    fn t2(&self) -> usize {
        self.schedule2.len()
    }
}

/// The cached trajectory of the last full epoch, the raw material of
/// incremental replay. `snap1[j][v * q + i]` is node `v`'s lane-`i` value at
/// the start of Phase I iteration `j` (`snap1[0]` holds the inputs);
/// likewise `snap2` for Phase II; `outputs[v * q + i]` is the final vote
/// output.
///
/// `sources1`/`sources2` record the realised contact graph: the node each
/// holder actually received a pull from in every round (`u32::MAX` when
/// nothing was delivered — a failed target, a lost or straggling message, a
/// crashed node, or a round the holder sat out). Draws are keyed purely by
/// `(seed, round, node)`, so these sources are epoch-invariant: a re-run on
/// new inputs realises exactly the same graph, which is what makes the
/// engine-free incremental replay exact, faults included. `sources1` is
/// `2·t1max` rows of `n` (slots A and B of each Phase I iteration);
/// `sources2` is `3·t2max + K` rows of `n` (Phase II rounds and votes).
/// `rounds`/`metrics` are the logical cost of the cached trajectory,
/// reported verbatim by incremental epochs.
/// Snapshots are stored lane-major and flat — `snap1[j][v * q + i]` — so an
/// incremental source read touches one cache line covering every lane of the
/// source node instead of chasing a per-node `Vec` pointer.
#[derive(Debug, Clone)]
struct Trajectory<V> {
    snap1: Vec<Vec<V>>,
    snap2: Vec<Vec<V>>,
    outputs: Vec<V>,
    sources1: Vec<u32>,
    sources2: Vec<u32>,
    rounds: u64,
    metrics: Metrics,
}

impl<V> Trajectory<V> {
    /// An unsized trajectory for the first full epoch to grow into —
    /// subsequent full epochs refill the previous epoch's buffers in place.
    fn empty() -> Self {
        Trajectory {
            snap1: Vec::new(),
            snap2: Vec::new(),
            outputs: Vec::new(),
            sources1: Vec::new(),
            sources2: Vec::new(),
            rounds: 0,
            metrics: Metrics::new(),
        }
    }
}

/// A lane-vector message tagged with its realised source id — the *logical*
/// message shape of the service's replay cache. The tag is observer-side
/// metadata: [`MessageSize`] delegates to the payload alone, so the traffic
/// metrics equal serving the bare lane vector.
///
/// The epoch hot path no longer constructs these (it fills a flat
/// [`LaneMatrix`] — one reused buffer instead of one heap `Vec` per node per
/// round); the type remains the reference semantics of what a recorded
/// sample *is*, and the conformance suite pins the lane-matrix collector
/// against an engine run that serves `Sourced` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sourced<V> {
    /// The realised pull source (the node whose lane row was served).
    pub source: u32,
    /// The served lane values, one per query.
    pub values: Vec<V>,
}

impl<V: NodeValue> Sourced<V> {
    /// Tags `values` with the node that served them.
    pub fn new(source: usize, values: Vec<V>) -> Self {
        Sourced {
            source: source as u32,
            values,
        }
    }
}

impl<V: NodeValue> MessageSize for Sourced<V> {
    fn message_bits(&self) -> u64 {
        self.values.message_bits()
    }
}

/// Reused epoch working memory: everything a steady-state epoch touches per
/// round is allocated here once (or by the first epoch) and only ever
/// *filled* afterwards — the buffer-reuse half of the service's "no
/// per-round size-`n` allocations" guarantee (the debug fingerprint in
/// [`QuantileService::recompute_full`] asserts the other half).
#[derive(Debug)]
struct EpochScratch<V> {
    /// Three lane matrices: Phase I uses slots 0–1, a Phase II window 0–2.
    slots: Vec<LaneMatrix<V>>,
    /// The live lane-major state vector (`n × q`).
    states: Vec<V>,
    /// Participation coins of the current iteration.
    coins: Vec<f64>,
    /// Reusable δ-cut participant set.
    active: ActiveSet,
    /// Whether a full epoch has already sized every buffer.
    warmed: bool,
}

impl<V> Default for EpochScratch<V> {
    fn default() -> Self {
        EpochScratch {
            slots: Vec::new(),
            states: Vec::new(),
            coins: Vec::new(),
            active: ActiveSet::from_fn(0, |_| false),
            warmed: false,
        }
    }
}

impl<V: NodeValue> EpochScratch<V> {
    /// Sizes every reusable buffer for an `n × q` epoch. Returns whether any
    /// buffer had to grow — which must never happen once `warmed`.
    fn prepare(&mut self, n: usize, q: usize, fill: V) -> bool {
        let mut grew = false;
        if self.slots.len() != 3 || self.slots.iter().any(|m| m.n() != n || m.lanes() != q) {
            self.slots = (0..3).map(|_| LaneMatrix::empty(n, q, fill)).collect();
            grew = true;
        }
        if self.states.len() != n * q {
            self.states.clear();
            self.states.resize(n * q, fill);
            grew = true;
        }
        if self.coins.len() != n {
            self.coins.clear();
            self.coins.resize(n, 0.0);
            grew = true;
        }
        if self.active.n() != n {
            self.active = ActiveSet::from_fn(n, |_| false);
            grew = true;
        }
        grew
    }
}

/// A multi-query quantile service over `n` value holders.
///
/// See the [module docs](self) for the design. Typical use:
///
/// ```
/// use gossip_net::EngineConfig;
/// use quantile_gossip::service::{QuantileQuery, QuantileService, ServiceConfig};
///
/// # fn main() -> gossip_net::Result<()> {
/// let readings: Vec<u64> = (0..256).map(|i| (i * 7919) % 65_536).collect();
/// let queries = [QuantileQuery::new(0.5, 0.125), QuantileQuery::new(0.9, 0.1)];
/// let mut svc = QuantileService::new(
///     &readings,
///     &queries,
///     ServiceConfig::default(),
///     EngineConfig::with_seed(7),
/// )?;
///
/// // First epoch: full batched run, one shared round sequence for both queries.
/// let out = svc.epoch()?;
/// assert_eq!(out.answers.len(), 2);
///
/// // A handful of holders observe new values; the next epoch replays only
/// // the affected part of the trajectory.
/// svc.ingest(3, 123)?;
/// svc.ingest(200, 45_000)?;
/// let out2 = svc.epoch()?;
/// assert_eq!(out2.answers.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QuantileService<V: NodeValue> {
    queries: Vec<QuantileQuery>,
    plans: Vec<LanePlan>,
    per_query: Vec<QueryCost>,
    config: ServiceConfig,
    engine_config: EngineConfig,
    n: usize,
    sketches: Vec<CompactorSketch<V>>,
    inputs: Vec<V>,
    dirty: Vec<bool>,
    cache: Option<Trajectory<V>>,
    /// Worker-thread override for epoch execution (`None` = engine default).
    threads: Option<usize>,
    scratch: EpochScratch<V>,
}

impl<V: NodeValue> QuantileService<V> {
    /// Creates a service over `values` answering `queries` each epoch.
    ///
    /// # Errors
    ///
    /// [`GossipError::TooFewNodes`] with fewer than two holders;
    /// [`GossipError::InvalidParameter`] for an empty query vector, a query
    /// with `φ ∉ [0, 1]` or `ε ≤ 0` (mirroring
    /// [`crate::approx::tournament_quantile`]), a zero-sample vote, a
    /// `dirty_threshold` outside `[0, 1]`, or a zero sketch capacity.
    pub fn new(
        values: &[V],
        queries: &[QuantileQuery],
        config: ServiceConfig,
        engine_config: EngineConfig,
    ) -> Result<Self> {
        let n = values.len();
        if n < 2 {
            return Err(GossipError::TooFewNodes { requested: n });
        }
        if queries.is_empty() {
            return Err(GossipError::InvalidParameter {
                name: "queries",
                reason: "the service needs at least one query".to_string(),
            });
        }
        if config.final_vote.samples == 0 {
            return Err(GossipError::InvalidParameter {
                name: "vote.samples",
                reason: "the final vote needs at least one sample".to_string(),
            });
        }
        if config.final_vote.samples > u16::MAX as usize {
            return Err(GossipError::InvalidParameter {
                name: "vote.samples",
                reason: format!("at most {} vote samples supported", u16::MAX),
            });
        }
        if !(config.dirty_threshold >= 0.0 && config.dirty_threshold <= 1.0) {
            return Err(GossipError::InvalidParameter {
                name: "dirty_threshold",
                reason: format!("must be in [0, 1], got {}", config.dirty_threshold),
            });
        }
        if config.sketch_capacity == 0 {
            return Err(GossipError::InvalidParameter {
                name: "sketch_capacity",
                reason: "holder sketches need a positive capacity".to_string(),
            });
        }
        let mut plans = Vec::with_capacity(queries.len());
        let mut per_query = Vec::with_capacity(queries.len());
        for query in queries {
            // Mirror tournament_quantile's validation and clamping exactly so
            // each lane's schedules equal the solo run's.
            if !(0.0..=1.0).contains(&query.phi) {
                return Err(GossipError::InvalidParameter {
                    name: "phi",
                    reason: format!("must be in [0, 1], got {}", query.phi),
                });
            }
            if query.epsilon <= 0.0 {
                return Err(GossipError::InvalidParameter {
                    name: "epsilon",
                    reason: format!("must be positive, got {}", query.epsilon),
                });
            }
            let eps = query.epsilon.min(MAX_TOURNAMENT_EPSILON);
            let schedule1 = TwoTournamentSchedule::compute(query.phi, eps)?;
            let schedule2 = ThreeTournamentSchedule::compute(eps / 4.0, n)?;
            per_query.push(QueryCost {
                phase1_iterations: schedule1.len(),
                phase2_iterations: schedule2.len(),
                solo_rounds: 2 * schedule1.len() as u64
                    + 3 * schedule2.len() as u64
                    + config.final_vote.samples as u64,
            });
            plans.push(LanePlan {
                schedule1,
                schedule2,
            });
        }
        let mut engine_config = engine_config;
        engine_config.ensure_pool_for(n);
        if engine_config.pool.is_none() {
            // Below the engine's parallel threshold `ensure_pool_for` is a
            // no-op, but the service still fuses each epoch into one
            // resident pool session — a 1-thread pool runs every dispatch
            // inline, so results and small-n wall-clock are unaffected.
            engine_config.pool = Some(Arc::new(WorkerPool::new(1)));
        }
        Ok(QuantileService {
            queries: queries.to_vec(),
            plans,
            per_query,
            config,
            engine_config,
            n,
            sketches: values
                .iter()
                .map(|&v| CompactorSketch::singleton(v, config.sketch_capacity))
                .collect(),
            inputs: values.to_vec(),
            dirty: vec![false; n],
            cache: None,
            threads: None,
            scratch: EpochScratch::default(),
        })
    }

    /// Overrides the worker-thread count epochs run on (clamped to at least
    /// 1). Answers never depend on this — only wall-clock does — which the
    /// conformance suite pins by running identical services at 1, 2 and 8
    /// threads. Grows the shared pool if the override exceeds it, so the
    /// phase engines keep fusing into one pool session.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        let t = threads.max(1);
        self.threads = Some(t);
        if !self
            .engine_config
            .pool
            .as_ref()
            .is_some_and(|p| p.threads() >= t)
        {
            self.engine_config.pool = Some(Arc::new(WorkerPool::new(t)));
        }
        self
    }

    /// Number of holders.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The query vector.
    pub fn queries(&self) -> &[QuantileQuery] {
        &self.queries
    }

    /// Per-query solo-run round costs.
    pub fn per_query(&self) -> &[QueryCost] {
        &self.per_query
    }

    /// Holders whose effective value changed since the last epoch.
    pub fn dirty_nodes(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }

    /// [`dirty_nodes`](Self::dirty_nodes) as a fraction of `n`.
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty_nodes() as f64 / self.n as f64
    }

    /// Whether a cached trajectory from a previous epoch exists.
    pub fn has_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// The effective (gossiped) value of each holder: its sketch median.
    pub fn effective_values(&self) -> &[V] {
        &self.inputs
    }

    /// Holder `node` observes `value`: the ingestion sketch absorbs it (one
    /// [`CompactorSketch::insert`], i.e. a singleton merge per Appendix A)
    /// and the holder's effective value becomes the sketch median. The holder
    /// is marked dirty only if that median actually moved.
    ///
    /// # Errors
    ///
    /// [`GossipError::InvalidParameter`] if `node >= n`.
    pub fn ingest(&mut self, node: usize, value: V) -> Result<()> {
        self.check_node(node)?;
        self.sketches[node].insert(value);
        let effective = self.sketches[node]
            .quantile(0.5)
            .expect("a holder sketch is never empty");
        if effective != self.inputs[node] {
            self.inputs[node] = effective;
            self.dirty[node] = true;
        }
        Ok(())
    }

    /// Replaces holder `node`'s stream outright: the sketch is reset to a
    /// singleton of `value`. Useful for deterministic dirty-set experiments.
    ///
    /// # Errors
    ///
    /// [`GossipError::InvalidParameter`] if `node >= n`.
    pub fn set_value(&mut self, node: usize, value: V) -> Result<()> {
        self.check_node(node)?;
        self.sketches[node] = CompactorSketch::singleton(value, self.config.sketch_capacity);
        if value != self.inputs[node] {
            self.inputs[node] = value;
            self.dirty[node] = true;
        }
        Ok(())
    }

    fn check_node(&self, node: usize) -> Result<()> {
        if node >= self.n {
            return Err(GossipError::InvalidParameter {
                name: "node",
                reason: format!("holder {node} out of range for {} holders", self.n),
            });
        }
        Ok(())
    }

    /// Answers every query on the current inputs: incrementally when a cached
    /// trajectory exists and the dirty fraction is at most
    /// [`ServiceConfig::dirty_threshold`], from scratch otherwise. Both paths
    /// produce identical answers.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (none under a well-formed configuration).
    pub fn epoch(&mut self) -> Result<ServiceOutcome<V>> {
        if self.cache.is_some() && self.dirty_fraction() <= self.config.dirty_threshold {
            self.recompute_incremental()
        } else {
            self.recompute_full()
        }
    }

    /// The two phase engines, derived exactly like
    /// [`crate::approx::tournament_quantile`] derives its sub-engines: one
    /// [`SeedSequence`] over the configured seed, first sub-seed to Phase I,
    /// second to Phase II. The engines carry `()` state — they are pure
    /// round/draw/metrics machines; the service owns the lane-major values
    /// and serves them from the sampling closures.
    fn engines(&self) -> (Engine<()>, Engine<()>) {
        let mut seeds = SeedSequence::new(self.engine_config.seed);
        let e1 = Engine::from_states(vec![(); self.n], self.engine_config.sub(seeds.next_seed()));
        let e2 = Engine::from_states(vec![(); self.n], self.engine_config.sub(seeds.next_seed()));
        (e1, e2)
    }

    /// The two phase seeds of [`engines`](Self::engines), without paying for
    /// engine construction — incremental replay needs only the coin streams.
    fn phase_seeds(&self) -> (u64, u64) {
        let mut seeds = SeedSequence::new(self.engine_config.seed);
        (seeds.next_seed(), seeds.next_seed())
    }

    fn t1max(&self) -> usize {
        self.plans.iter().map(LanePlan::t1).max().unwrap_or(0)
    }

    fn t2max(&self) -> usize {
        self.plans.iter().map(LanePlan::t2).max().unwrap_or(0)
    }

    /// Runs every lane from scratch through one shared round sequence and
    /// caches the trajectory for later incremental epochs.
    ///
    /// The whole epoch — Phase I pulls, Phase II 3-TOURNAMENT windows and
    /// the vote derivation — executes as **one resident pool session**
    /// ([`WorkerPool::run_program`]): the ~`2·t1 + 3·t2 + K` rounds cost a
    /// single pool dispatch instead of one hand-off per round primitive.
    /// Fusion is pure scheduling; `tests/service.rs` pins the answers
    /// bit-identical to the unfused loop.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (none under a well-formed configuration).
    pub fn recompute_full(&mut self) -> Result<ServiceOutcome<V>> {
        let pool = Arc::clone(
            self.engine_config
                .pool
                .as_ref()
                .expect("the service constructor always installs a pool"),
        );
        pool.run_program(|| self.full_epoch_body())
    }

    /// [`recompute_full`](Self::recompute_full) without the resident pool
    /// session — every round primitive dispatches on its own. Exists so the
    /// conformance suite can pin fused ≡ looped; results are identical by
    /// construction, only scheduling differs.
    #[doc(hidden)]
    pub fn recompute_full_unfused(&mut self) -> Result<ServiceOutcome<V>> {
        self.full_epoch_body()
    }

    /// The full-epoch pipeline: flat lane-major sample collection
    /// ([`Engine::collect_lanes`]), pool-parallel lane-step application, and
    /// end-of-epoch vote derivation from the recorded trajectory.
    ///
    /// Steady-state epochs are **allocation-free per round**: every round
    /// buffer (lane matrices, states, coins, active set, snapshots, source
    /// rows, outputs) is reused from [`EpochScratch`] and the previous
    /// trajectory; a debug fingerprint asserts no buffer moved.
    fn full_epoch_body(&mut self) -> Result<ServiceOutcome<V>> {
        let (n, q, k) = (self.n, self.queries.len(), self.config.final_vote.samples);
        let (t1max, t2max) = (self.t1max(), self.t2max());
        let (mut e1, mut e2) = self.engines();
        if let Some(t) = self.threads {
            // `set_threads` pre-sized the shared pool, so these never swap
            // pools — the epoch stays fused on one worker set.
            e1.set_threads(t);
            e2.set_threads(t);
        }
        let threads = e1.threads();
        let pool = Arc::clone(e1.pool());
        let (seed1, seed2) = (e1.seed(), e2.seed());
        let plans = &self.plans;
        let mut timings = EpochTimings::default();

        // ---- Buffer preparation (reuse everything from last epoch) -----
        let fill = self.inputs[0];
        let mut scratch = std::mem::take(&mut self.scratch);
        let grew = scratch.prepare(n, q, fill);
        debug_assert!(
            !(scratch.warmed && grew),
            "steady-state epoch grew a scratch buffer"
        );
        let mut traj = self.cache.take().unwrap_or_else(Trajectory::empty);
        let r2max = 3 * t2max + k;
        traj.sources1.clear();
        traj.sources1.resize(2 * t1max * n, u32::MAX);
        traj.sources2.clear();
        traj.sources2.resize(r2max * n, u32::MAX);
        traj.snap1.resize_with(t1max + 1, Vec::new);
        traj.snap2.resize_with(t2max + 1, Vec::new);
        let mut states = std::mem::take(&mut scratch.states);
        #[cfg(debug_assertions)]
        let warmed_ptrs = scratch
            .warmed
            .then(|| epoch_buffer_ptrs(&traj, &states, &scratch.coins));
        {
            let inputs = &self.inputs;
            par::for_chunks(
                &pool,
                &mut states[..],
                threads,
                (),
                |start, chunk| {
                    let mut v = start / q;
                    let mut i = start % q;
                    for slot in chunk.iter_mut() {
                        *slot = inputs[v];
                        i += 1;
                        if i == q {
                            i = 0;
                            v += 1;
                        }
                    }
                },
                |(), ()| (),
            );
        }

        // ---- Phase I: shared 2-TOURNAMENT rounds -----------------------
        let t0 = Instant::now();
        copy_into(&pool, threads, &mut traj.snap1[0], &states);
        timings.record_secs += t0.elapsed().as_secs_f64();
        for j in 0..t1max {
            let cls = p1_class(plans, j);
            let EpochScratch {
                slots,
                coins,
                active,
                ..
            } = &mut scratch;
            // Slot A is dense for every lane (both branches of Algorithm 1
            // take a first fresh sample); slot B is dense unless *every* lane
            // active at `j` is in its δ-truncated step, in which case the
            // union of the lanes' participant sets suffices — participant
            // sets are nested (shared coins, per-lane thresholds), so the
            // union is just the δ_max cut.
            let t0 = Instant::now();
            if cls.needs_coins {
                participation_coins_into(&pool, threads, seed1, j as u64, coins);
            }
            let (slot_a, rest) = slots.split_at_mut(1);
            let (sa_m, sb_m) = (&mut slot_a[0], &mut rest[0]);
            e1.collect_lanes(&states, sa_m);
            if cls.any_dense_b {
                e1.collect_lanes(&states, sb_m);
            } else {
                let cref = &coins[..];
                active.reset_from_fn(|v| cref[v] < cls.delta_max);
                e1.collect_lanes_on(active, &states, sb_m);
            }
            timings.collect_secs += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let (row_a, row_b) = (2 * j * n, (2 * j + 1) * n);
            traj.sources1[row_a..row_a + n].copy_from_slice(sa_m.sources());
            traj.sources1[row_b..row_b + n].copy_from_slice(sb_m.sources());
            timings.record_secs += t0.elapsed().as_secs_f64();

            // Element-parallel lane step, in place over the flat state
            // vector. A node with no delivery in either slot hits the
            // `(None, None)` arm of every step rule, which returns the
            // current value — so no sample-presence pre-filter is needed.
            let t0 = Instant::now();
            let (a_vals, a_srcs) = (sa_m.values(), sa_m.sources());
            let (b_vals, b_srcs) = (sb_m.values(), sb_m.sources());
            let cref = &coins[..];
            par::for_chunks(
                &pool,
                &mut states[..],
                threads,
                (),
                |start, chunk| {
                    let mut v = start / q;
                    let mut i = start % q;
                    for slot in chunk.iter_mut() {
                        let steps = &plans[i].schedule1.steps;
                        if j < steps.len() {
                            let cur = *slot;
                            let s0 = (a_srcs[v] != u32::MAX).then(|| a_vals[v * q + i]);
                            let s1 = (b_srcs[v] != u32::MAX).then(|| b_vals[v * q + i]);
                            let side = plans[i].schedule1.side;
                            let delta = steps[j].delta;
                            *slot = if delta >= 1.0 {
                                lane_step_two(side, s0, s1, cur)
                            } else {
                                lane_step_two_delta(side, cref[v] < delta, s0, s1, cur)
                            };
                        }
                        i += 1;
                        if i == q {
                            i = 0;
                            v += 1;
                        }
                    }
                },
                |(), ()| (),
            );
            timings.apply_secs += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            copy_into(&pool, threads, &mut traj.snap1[j + 1], &states);
            timings.record_secs += t0.elapsed().as_secs_f64();
        }

        // ---- Phase II: shared 3-TOURNAMENT rounds ----------------------
        let t0 = Instant::now();
        copy_into(&pool, threads, &mut traj.snap2[0], &states);
        timings.record_secs += t0.elapsed().as_secs_f64();
        let mut coins_for = usize::MAX;
        for r in 0..r2max {
            let (j, s) = (r / 3, r % 3);
            let cls = p2_round_class(plans, k, r);
            let EpochScratch {
                slots,
                coins,
                active,
                ..
            } = &mut scratch;
            let t0 = Instant::now();
            {
                let slot_m = &mut slots[s];
                if cls.any_dense {
                    e2.collect_lanes(&states, slot_m);
                } else {
                    if coins_for != j {
                        participation_coins_into(&pool, threads, seed2, j as u64, coins);
                        coins_for = j;
                    }
                    let cref = &coins[..];
                    active.reset_from_fn(|v| cref[v] < cls.delta_max);
                    e2.collect_lanes_on(active, &states, slot_m);
                }
            }
            timings.collect_secs += t0.elapsed().as_secs_f64();

            let t0 = Instant::now();
            let row = r * n;
            traj.sources2[row..row + n].copy_from_slice(slots[s].sources());
            timings.record_secs += t0.elapsed().as_secs_f64();

            if s == 2 && plans.iter().any(|p| p.t2() > j) {
                let any_delta = plans
                    .iter()
                    .any(|p| p.t2() == j + 1 && p.schedule2.final_delta < 1.0);
                if any_delta && coins_for != j {
                    participation_coins_into(&pool, threads, seed2, j as u64, coins);
                    coins_for = j;
                }
                let t0 = Instant::now();
                let (s0_v, s0_s) = (slots[0].values(), slots[0].sources());
                let (s1_v, s1_s) = (slots[1].values(), slots[1].sources());
                let (s2_v, s2_s) = (slots[2].values(), slots[2].sources());
                let cref = &coins[..];
                par::for_chunks(
                    &pool,
                    &mut states[..],
                    threads,
                    (),
                    |start, chunk| {
                        let mut v = start / q;
                        let mut i = start % q;
                        for slot in chunk.iter_mut() {
                            let t2 = plans[i].t2();
                            if t2 > j {
                                let cur = *slot;
                                let s0 = (s0_s[v] != u32::MAX).then(|| s0_v[v * q + i]);
                                let s1 = (s1_s[v] != u32::MAX).then(|| s1_v[v * q + i]);
                                let s2 = (s2_s[v] != u32::MAX).then(|| s2_v[v * q + i]);
                                let fd = plans[i].schedule2.final_delta;
                                *slot = if t2 == j + 1 && fd < 1.0 {
                                    lane_step_three_delta(cref[v] < fd, s0, s1, s2, cur)
                                } else {
                                    lane_step_three(s0, s1, s2, cur)
                                };
                            }
                            i += 1;
                            if i == q {
                                i = 0;
                                v += 1;
                            }
                        }
                    },
                    |(), ()| (),
                );
                timings.apply_secs += t0.elapsed().as_secs_f64();
                if j < t2max {
                    let t0 = Instant::now();
                    copy_into(&pool, threads, &mut traj.snap2[j + 1], &states);
                    timings.record_secs += t0.elapsed().as_secs_f64();
                }
            }
        }

        // ---- Per-lane vote derivation ----------------------------------
        // Derived entirely from the recorded trajectory instead of
        // accumulated per vote round: lane `i`'s sample at vote round `rr`
        // is the value its realised source served, and the states served
        // during any Phase II round `rr` are exactly `snap2[min(rr/3,
        // t2max)]` (collection precedes the window-end apply, and a lane's
        // component freezes once it converges). The median of the gathered
        // multiset via `select_nth_unstable` equals the full sort's
        // `sorted[c / 2]` — the identical formula the incremental patch has
        // always used, pinned by incremental ≡ full.
        let t0 = Instant::now();
        copy_into(&pool, threads, &mut traj.outputs, &states);
        {
            let Trajectory {
                outputs,
                snap2,
                sources2,
                ..
            } = &mut traj;
            let (snap2, sources2) = (&snap2[..], &sources2[..]);
            par::for_chunks(
                &pool,
                &mut outputs[..],
                threads,
                (),
                |start, chunk| {
                    let mut buf: Vec<V> = Vec::with_capacity(k);
                    let mut v = start / q;
                    let mut i = start % q;
                    for slot in chunk.iter_mut() {
                        let first = 3 * plans[i].t2();
                        buf.clear();
                        for rr in first..first + k {
                            let src = sources2[rr * n + v];
                            if src != u32::MAX {
                                buf.push(snap2[(rr / 3).min(t2max)][src as usize * q + i]);
                            }
                        }
                        if !buf.is_empty() {
                            let c = buf.len();
                            *slot = *buf.select_nth_unstable(c / 2).1;
                        } // an empty vote keeps the converged value
                        i += 1;
                        if i == q {
                            i = 0;
                            v += 1;
                        }
                    }
                },
                |(), ()| (),
            );
        }
        timings.vote_secs += t0.elapsed().as_secs_f64();

        let metrics = e1.metrics() + e2.metrics();
        let rounds = metrics.rounds;
        traj.rounds = rounds;
        traj.metrics = metrics;
        #[cfg(debug_assertions)]
        if let Some(before) = warmed_ptrs {
            debug_assert_eq!(
                before,
                epoch_buffer_ptrs(&traj, &states, &scratch.coins),
                "steady-state epoch reallocated a round buffer"
            );
        }
        scratch.states = states;
        scratch.warmed = true;
        self.scratch = scratch;
        self.cache = Some(traj);
        self.dirty.iter_mut().for_each(|d| *d = false);
        Ok(self.outcome_from_cache(rounds, metrics, EpochMode::Full, timings))
    }

    /// Replays the cached trajectory as a pure dataflow over the realised
    /// contact graph recorded by the last full recompute: no engine rounds
    /// run at all. Each Phase I/II iteration touches only the nodes whose
    /// own state or realised pull source is dirty, recomputed states are
    /// compared against the cache and pruned on equality, and the per-lane
    /// vote outputs are patched for the nodes whose realised vote sources
    /// carry a dirty component. All other nodes keep their cached
    /// trajectory untouched. The reported rounds/metrics are the cached
    /// logical cost of the trajectory (the network would spend the same
    /// either way — only the service-side wall-clock shrinks).
    ///
    /// Like [`recompute_full`](Self::recompute_full), the whole replay runs
    /// as one resident pool session: the per-round dirty frontier is carved
    /// into disjoint node chunks and recomputed on the pool.
    fn recompute_incremental(&mut self) -> Result<ServiceOutcome<V>> {
        let pool = Arc::clone(
            self.engine_config
                .pool
                .as_ref()
                .expect("the service constructor always installs a pool"),
        );
        pool.run_program(|| self.incremental_epoch_body())
    }

    fn incremental_epoch_body(&mut self) -> Result<ServiceOutcome<V>> {
        let mut cache = self
            .cache
            .take()
            .expect("incremental replay needs a cached trajectory");
        let (n, q, k) = (self.n, self.queries.len(), self.config.final_vote.samples);
        let (t1max, t2max) = (self.t1max(), self.t2max());
        let (seed1, seed2) = self.phase_seeds();
        let pool = Arc::clone(
            self.engine_config
                .pool
                .as_ref()
                .expect("the service constructor always installs a pool"),
        );
        let threads = self.threads.unwrap_or(if n >= Engine::<()>::PAR_MIN_NODES {
            par::num_threads()
        } else {
            1
        });
        let mut timings = EpochTimings::default();
        let t_replay = Instant::now();

        // Seed the dirty set, pruning holders whose value bounced back.
        let mut dirty_map = vec![false; n];
        let mut comp_dirty = vec![false; n * q];
        let mut dirty_nodes = 0usize;
        for v in 0..n {
            if self.dirty[v] && self.inputs[v] != cache.snap1[0][v * q] {
                dirty_map[v] = true;
                dirty_nodes += 1;
                for i in 0..q {
                    comp_dirty[v * q + i] = true;
                    cache.snap1[0][v * q + i] = self.inputs[v];
                }
            }
        }
        let dirty_fraction = dirty_nodes as f64 / n as f64;
        if dirty_nodes == 0 {
            // Every marked holder bounced back to its cached value: the
            // cached trajectory is already current.
            let (rounds, metrics) = (cache.rounds, cache.metrics);
            self.cache = Some(cache);
            self.dirty.iter_mut().for_each(|d| *d = false);
            timings.replay_secs = t_replay.elapsed().as_secs_f64();
            return Ok(self.outcome_from_cache(
                rounds,
                metrics,
                EpochMode::Incremental {
                    dirty_nodes,
                    dirty_fraction,
                },
                timings,
            ));
        }
        let plans = &self.plans;
        let coins = &mut self.scratch.coins;
        if coins.len() != n {
            coins.clear();
            coins.resize(n, 0.0);
        }

        // ---- Phase I replay --------------------------------------------
        for j in 0..t1max {
            let cls = p1_class(plans, j);
            if cls.needs_coins {
                participation_coins_into(&pool, threads, seed1, j as u64, coins);
            }
            // A node's iteration-`j` state can change only if its own state
            // or one of its realised pull sources this iteration is dirty.
            let sa_row = &cache.sources1[2 * j * n..(2 * j + 1) * n];
            let sb_row = &cache.sources1[(2 * j + 1) * n..(2 * j + 2) * n];
            let dm = &dirty_map[..];
            let cand: Vec<u32> = par::fold_ranges(
                &pool,
                n,
                threads,
                Vec::new(),
                |range| {
                    let mut hits = Vec::new();
                    for v in range {
                        if dm[v]
                            || (sa_row[v] != u32::MAX && dm[sa_row[v] as usize])
                            || (sb_row[v] != u32::MAX && dm[sb_row[v] as usize])
                        {
                            hits.push(v as u32);
                        }
                    }
                    hits
                },
                |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                },
            );
            let (head, tail) = cache.snap1.split_at_mut(j + 1);
            let (snap, next) = (&head[j][..], &mut tail[0]);
            let cref = &coins[..];
            // The candidates are disjoint rows of both the next snapshot
            // and the component-dirty map, so the frontier recompute carves
            // them into per-thread chunks.
            let still: Vec<u32> = par::for_sparse_rows2(
                &pool,
                &mut next[..],
                q,
                &mut comp_dirty[..],
                q,
                &cand,
                threads,
                Vec::new(),
                |ids, base, sub_next, sub_cd| {
                    let mut still = Vec::new();
                    for &vu in ids {
                        let v = vu as usize;
                        let rel = (v - base) * q;
                        let sa = (sa_row[v] != u32::MAX).then(|| sa_row[v] as usize * q);
                        let sb = (sb_row[v] != u32::MAX).then(|| sb_row[v] as usize * q);
                        let mut any = false;
                        for (i, plan) in plans.iter().enumerate() {
                            let steps = &plan.schedule1.steps;
                            let cur = snap[v * q + i];
                            let new = if j >= steps.len() {
                                cur
                            } else {
                                let side = plan.schedule1.side;
                                let delta = steps[j].delta;
                                let s0 = sa.map(|o| snap[o + i]);
                                let s1 = sb.map(|o| snap[o + i]);
                                if delta >= 1.0 {
                                    lane_step_two(side, s0, s1, cur)
                                } else {
                                    lane_step_two_delta(side, cref[v] < delta, s0, s1, cur)
                                }
                            };
                            let changed = new != sub_next[rel + i];
                            sub_cd[rel + i] = changed;
                            any = any || changed;
                            sub_next[rel + i] = new;
                        }
                        if any {
                            still.push(vu);
                        }
                    }
                    still
                },
                |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                },
            );
            // Equivalent to the sequential per-candidate `dirty_map[v] =
            // any`: nothing inside the iteration reads `dirty_map`, so the
            // update can be deferred past the parallel pass.
            for &vu in &cand {
                dirty_map[vu as usize] = false;
            }
            for &vu in &still {
                dirty_map[vu as usize] = true;
            }
        }
        for (v, &dirty) in dirty_map.iter().enumerate() {
            if dirty {
                let (src, dst) = (&cache.snap1[t1max][v * q..(v + 1) * q], v * q);
                cache.snap2[0][dst..dst + q].copy_from_slice(src);
            }
        }

        // ---- Phase II replay -------------------------------------------
        for j in 0..t2max {
            let any_delta = plans
                .iter()
                .any(|p| p.t2() == j + 1 && p.schedule2.final_delta < 1.0);
            if any_delta {
                participation_coins_into(&pool, threads, seed2, j as u64, coins);
            }
            // The three rounds of window `j` all serve the pre-window
            // snapshot, so replay reduces to one pass per window. Sparse
            // rounds need no membership test: a sat-out round is a
            // `u32::MAX` source.
            let rows: [&[u32]; 3] = [
                &cache.sources2[3 * j * n..(3 * j + 1) * n],
                &cache.sources2[(3 * j + 1) * n..(3 * j + 2) * n],
                &cache.sources2[(3 * j + 2) * n..(3 * j + 3) * n],
            ];
            let dm = &dirty_map[..];
            let cand: Vec<u32> = par::fold_ranges(
                &pool,
                n,
                threads,
                Vec::new(),
                |range| {
                    let mut hits = Vec::new();
                    for v in range {
                        if dm[v]
                            || rows
                                .iter()
                                .any(|row| row[v] != u32::MAX && dm[row[v] as usize])
                        {
                            hits.push(v as u32);
                        }
                    }
                    hits
                },
                |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                },
            );
            let (head, tail) = cache.snap2.split_at_mut(j + 1);
            let (snapj, next) = (&head[j][..], &mut tail[0]);
            let cref = &coins[..];
            let still: Vec<u32> = par::for_sparse_rows2(
                &pool,
                &mut next[..],
                q,
                &mut comp_dirty[..],
                q,
                &cand,
                threads,
                Vec::new(),
                |ids, base, sub_next, sub_cd| {
                    let mut still = Vec::new();
                    for &vu in ids {
                        let v = vu as usize;
                        let rel = (v - base) * q;
                        let offset = |slot: usize| {
                            let src = rows[slot][v];
                            (src != u32::MAX).then(|| src as usize * q)
                        };
                        let (s0o, s1o, s2o) = (offset(0), offset(1), offset(2));
                        let mut any = false;
                        for (i, plan) in plans.iter().enumerate() {
                            let t2 = plan.t2();
                            let cur = snapj[v * q + i];
                            let new = if t2 <= j {
                                cur
                            } else {
                                let s0 = s0o.map(|o| snapj[o + i]);
                                let s1 = s1o.map(|o| snapj[o + i]);
                                let s2 = s2o.map(|o| snapj[o + i]);
                                let fd = plan.schedule2.final_delta;
                                if t2 == j + 1 && fd < 1.0 {
                                    lane_step_three_delta(cref[v] < fd, s0, s1, s2, cur)
                                } else {
                                    lane_step_three(s0, s1, s2, cur)
                                }
                            };
                            let changed = new != sub_next[rel + i];
                            sub_cd[rel + i] = changed;
                            any = any || changed;
                            sub_next[rel + i] = new;
                        }
                        if any {
                            still.push(vu);
                        }
                    }
                    still
                },
                |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                },
            );
            for &vu in &cand {
                dirty_map[vu as usize] = false;
            }
            for &vu in &still {
                dirty_map[vu as usize] = true;
            }
        }
        timings.replay_secs = t_replay.elapsed().as_secs_f64();

        // ---- Patch vote outputs for the affected nodes -----------------
        // A lane's components freeze once it converges, so after the window
        // loop `comp_dirty` is final for every lane: a node's vote output
        // can change only if its own component or one of its realised vote
        // sources carries a dirty component (the own-dirty test also covers
        // the empty-vote fallback to the converged value). The patch runs
        // element-parallel over the flat output vector — per `(v, i)` the
        // hit test walks the node's `k` realised sources and, on a hit,
        // regathers the vote multiset and takes its median value, identical
        // to the full path's `sorted[c / 2]`.
        let t0 = Instant::now();
        {
            let Trajectory {
                outputs,
                snap2,
                sources2,
                ..
            } = &mut cache;
            let (snap2, sources2) = (&snap2[..], &sources2[..]);
            let cd = &comp_dirty[..];
            par::for_chunks(
                &pool,
                &mut outputs[..],
                threads,
                (),
                |start, chunk| {
                    let mut buf: Vec<V> = Vec::with_capacity(k);
                    let mut v = start / q;
                    let mut i = start % q;
                    for slot in chunk.iter_mut() {
                        let first = 3 * plans[i].t2();
                        let mut hit = cd[v * q + i];
                        if !hit {
                            for rr in first..first + k {
                                let src = sources2[rr * n + v];
                                if src != u32::MAX && cd[src as usize * q + i] {
                                    hit = true;
                                    break;
                                }
                            }
                        }
                        if hit {
                            buf.clear();
                            for rr in first..first + k {
                                let src = sources2[rr * n + v];
                                if src != u32::MAX {
                                    buf.push(snap2[(rr / 3).min(t2max)][src as usize * q + i]);
                                }
                            }
                            *slot = if buf.is_empty() {
                                snap2[t2max][v * q + i]
                            } else {
                                let c = buf.len();
                                *buf.select_nth_unstable(c / 2).1
                            };
                        }
                        i += 1;
                        if i == q {
                            i = 0;
                            v += 1;
                        }
                    }
                },
                |(), ()| (),
            );
        }
        timings.vote_secs = t0.elapsed().as_secs_f64();

        let rounds = cache.rounds;
        let metrics = cache.metrics;
        self.cache = Some(cache);
        self.dirty.iter_mut().for_each(|d| *d = false);
        Ok(self.outcome_from_cache(
            rounds,
            metrics,
            EpochMode::Incremental {
                dirty_nodes,
                dirty_fraction,
            },
            timings,
        ))
    }

    fn outcome_from_cache(
        &self,
        rounds: u64,
        metrics: Metrics,
        mode: EpochMode,
        timings: EpochTimings,
    ) -> ServiceOutcome<V> {
        let outputs = &self.cache.as_ref().expect("cache just written").outputs;
        let q = self.queries.len();
        let answers = (0..q)
            .map(|i| outputs.chunks_exact(q).map(|row| row[i]).collect())
            .collect();
        ServiceOutcome {
            answers,
            rounds,
            metrics,
            per_query: self.per_query.clone(),
            mode,
            timings,
        }
    }
}

/// Classification of Phase I iteration `j` across lanes.
struct P1Class {
    /// Some lane runs a full (δ = 1) step at `j`, forcing slot B dense.
    any_dense_b: bool,
    /// Some lane runs a δ-truncated step at `j` (participation coins needed).
    needs_coins: bool,
    /// Largest δ among truncated lanes (their participant sets are nested
    /// under the shared coins, so this is the union's cut).
    delta_max: f64,
}

fn p1_class(plans: &[LanePlan], j: usize) -> P1Class {
    let mut cls = P1Class {
        any_dense_b: false,
        needs_coins: false,
        delta_max: 0.0,
    };
    for plan in plans {
        let steps = &plan.schedule1.steps;
        if j < steps.len() {
            let d = steps[j].delta;
            if d >= 1.0 {
                cls.any_dense_b = true;
            } else {
                cls.needs_coins = true;
                if d > cls.delta_max {
                    cls.delta_max = d;
                }
            }
        }
    }
    cls
}

/// Classification of Phase II round `r` (0-based within the phase). Vote
/// rounds need no lane list here — the vote outputs are derived after the
/// phase from the recorded snapshots and realised sources — but a voting
/// lane still forces the round dense.
struct P2Round {
    /// Some lane needs the round dense (first slot of an iteration, a full
    /// tournament step, or a vote round).
    any_dense: bool,
    /// Largest final δ among truncated lanes when the round can run sparse.
    delta_max: f64,
}

fn p2_round_class(plans: &[LanePlan], k: usize, r: usize) -> P2Round {
    let (j, s) = (r / 3, r % 3);
    let mut cls = P2Round {
        any_dense: false,
        delta_max: 0.0,
    };
    for plan in plans {
        let t2 = plan.t2();
        if r < 3 * t2 {
            if s == 0 {
                cls.any_dense = true;
            } else if t2 == j + 1 && plan.schedule2.final_delta < 1.0 {
                if plan.schedule2.final_delta > cls.delta_max {
                    cls.delta_max = plan.schedule2.final_delta;
                }
            } else {
                cls.any_dense = true;
            }
        } else if r < 3 * t2 + k {
            cls.any_dense = true;
        }
    }
    cls
}

/// The participation coins of one iteration, drawn exactly as the solo
/// tournaments draw them (`STREAM_PARTICIPATION`, keyed by iteration), into
/// a reused buffer in parallel — each coin depends only on `(seed,
/// iteration, node)`, so chunking is invisible in the values.
fn participation_coins_into(
    pool: &WorkerPool,
    threads: usize,
    seed: u64,
    iteration: u64,
    out: &mut [f64],
) {
    let prefix = NodeRng::key_prefix(seed, iteration, NodeRng::STREAM_PARTICIPATION);
    par::for_chunks(
        pool,
        out,
        threads,
        (),
        |start, chunk| {
            for (j, c) in chunk.iter_mut().enumerate() {
                *c = prefix.node((start + j) as u64).next_f64();
            }
        },
        |(), ()| (),
    );
}

/// Pool-parallel `dst.copy_from_slice(src)`, (re)sizing `dst` only on a
/// length mismatch — the snapshot-recording primitive of the full epoch
/// (steady-state epochs always hit the matched-length path and stay
/// allocation-free).
fn copy_into<V: NodeValue>(pool: &WorkerPool, threads: usize, dst: &mut Vec<V>, src: &[V]) {
    if src.is_empty() {
        dst.clear();
        return;
    }
    if dst.len() != src.len() {
        dst.clear();
        dst.resize(src.len(), src[0]);
    }
    par::for_chunks(
        pool,
        &mut dst[..],
        threads,
        (),
        |start, chunk| {
            chunk.copy_from_slice(&src[start..start + chunk.len()]);
        },
        |(), ()| (),
    );
}

/// The backing-store pointers of every per-epoch buffer, used by the debug
/// steady-state assertion in `full_epoch_body`: if any pointer moved between
/// two warmed epochs, a round buffer was reallocated.
#[cfg(debug_assertions)]
fn epoch_buffer_ptrs<V>(traj: &Trajectory<V>, states: &[V], coins: &[f64]) -> Vec<usize> {
    let mut ptrs = vec![
        states.as_ptr() as usize,
        coins.as_ptr() as usize,
        traj.sources1.as_ptr() as usize,
        traj.sources2.as_ptr() as usize,
        traj.outputs.as_ptr() as usize,
    ];
    ptrs.extend(traj.snap1.iter().map(|s| s.as_ptr() as usize));
    ptrs.extend(traj.snap2.iter().map(|s| s.as_ptr() as usize));
    ptrs
}

/// One lane's update in a full (δ = 1) Phase I iteration — the exact arms of
/// [`crate::two_tournament::run`]'s dense `local_step`.
fn lane_step_two<V: NodeValue>(side: ShrinkSide, s0: Option<V>, s1: Option<V>, cur: V) -> V {
    match (s0, s1) {
        (Some(a), Some(b)) => extremum(side, a, b),
        (Some(a), None) => extremum(side, a, cur),
        (None, Some(b)) => extremum(side, b, cur),
        (None, None) => cur,
    }
}

/// One lane's update in a δ-truncated Phase I iteration.
fn lane_step_two_delta<V: NodeValue>(
    side: ShrinkSide,
    participant: bool,
    s0: Option<V>,
    s1: Option<V>,
    cur: V,
) -> V {
    let s1 = if participant { s1 } else { None };
    match (s0, s1) {
        (Some(a), Some(b)) => extremum(side, a, b),
        (Some(a), None) if !participant => a,
        (Some(a), None) => extremum(side, a, cur),
        (None, Some(b)) => extremum(side, b, cur),
        (None, None) => cur,
    }
}

/// One lane's update in a full Phase II iteration — the samples present, in
/// round order, fed through the dense arms of [`crate::three_tournament::run`].
fn lane_step_three<V: NodeValue>(s0: Option<V>, s1: Option<V>, s2: Option<V>, cur: V) -> V {
    let mut got = [cur; 3];
    let mut c = 0;
    for x in [s0, s1, s2].into_iter().flatten() {
        got[c] = x;
        c += 1;
    }
    match c {
        3 => median3(got[0], got[1], got[2]),
        2 => median3(got[0], got[1], cur),
        1 => median3(got[0], cur, cur),
        _ => cur,
    }
}

/// One lane's update in the δ-truncated final Phase II iteration.
fn lane_step_three_delta<V: NodeValue>(
    participant: bool,
    s0: Option<V>,
    s1: Option<V>,
    s2: Option<V>,
    cur: V,
) -> V {
    if !participant {
        return match s0 {
            Some(a) => a,
            None => cur,
        };
    }
    let mut extra = [cur; 2];
    let mut c = 0;
    for x in [s1, s2].into_iter().flatten() {
        extra[c] = x;
        c += 1;
    }
    match (s0, c) {
        (Some(a), 2) => median3(a, extra[0], extra[1]),
        (Some(a), 1) => median3(a, extra[0], cur),
        (Some(a), _) => median3(a, cur, cur),
        (None, 2) => median3(extra[0], extra[1], cur),
        (None, 1) => median3(extra[0], cur, cur),
        _ => cur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{tournament_quantile, TournamentConfig};

    fn inputs(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 7919) % 100_000).collect()
    }

    #[test]
    fn batched_answers_match_solo_runs_bit_for_bit() {
        let values = inputs(256);
        let queries = [
            QuantileQuery::new(0.5, 0.125),
            QuantileQuery::new(0.9, 0.1),
            QuantileQuery::new(0.1, 0.125),
        ];
        let mut svc = QuantileService::new(
            &values,
            &queries,
            ServiceConfig::default(),
            EngineConfig::with_seed(99),
        )
        .unwrap();
        let out = svc.epoch().unwrap();
        assert_eq!(out.mode, EpochMode::Full);
        for (i, query) in queries.iter().enumerate() {
            let solo = tournament_quantile(
                &values,
                query.phi,
                query.epsilon,
                &TournamentConfig::default(),
                EngineConfig::with_seed(99),
            )
            .unwrap();
            assert_eq!(out.answers[i], solo.outputs, "query {i} diverged");
        }
        // Sharing rounds across 3 queries beats the summed solo cost.
        assert!(
            out.amortisation() > 1.0,
            "amortisation {}",
            out.amortisation()
        );
    }

    #[test]
    fn incremental_epoch_equals_full_recompute() {
        let values = inputs(300);
        let queries = [QuantileQuery::new(0.5, 0.125), QuantileQuery::new(0.8, 0.1)];
        let cfg = ServiceConfig::default();
        let mut inc =
            QuantileService::new(&values, &queries, cfg, EngineConfig::with_seed(5)).unwrap();
        inc.epoch().unwrap();
        for (node, val) in [(7usize, 1u64), (123, 99_999), (250, 17)] {
            inc.set_value(node, val).unwrap();
        }
        let out = inc.epoch().unwrap();
        assert!(matches!(
            out.mode,
            EpochMode::Incremental { dirty_nodes: 3, .. }
        ));

        let mut updated = values;
        for (node, val) in [(7usize, 1u64), (123, 99_999), (250, 17)] {
            updated[node] = val;
        }
        let mut full =
            QuantileService::new(&updated, &queries, cfg, EngineConfig::with_seed(5)).unwrap();
        let fout = full.epoch().unwrap();
        assert_eq!(out.answers, fout.answers);
        assert_eq!(out.rounds, fout.rounds);
    }

    #[test]
    fn clean_incremental_epoch_reuses_the_cache() {
        let values = inputs(128);
        let queries = [QuantileQuery::new(0.5, 0.125)];
        let mut svc = QuantileService::new(
            &values,
            &queries,
            ServiceConfig::default(),
            EngineConfig::with_seed(1),
        )
        .unwrap();
        let first = svc.epoch().unwrap();
        let second = svc.epoch().unwrap();
        assert!(matches!(
            second.mode,
            EpochMode::Incremental { dirty_nodes: 0, .. }
        ));
        assert_eq!(first.answers, second.answers);
    }

    #[test]
    fn dirty_threshold_falls_back_to_full() {
        let values = inputs(64);
        let queries = [QuantileQuery::new(0.5, 0.125)];
        let cfg = ServiceConfig {
            dirty_threshold: 0.05,
            ..ServiceConfig::default()
        };
        let mut svc =
            QuantileService::new(&values, &queries, cfg, EngineConfig::with_seed(2)).unwrap();
        svc.epoch().unwrap();
        for v in 0..10 {
            svc.set_value(v, 1_000_000 + v as u64).unwrap();
        }
        let out = svc.epoch().unwrap();
        assert_eq!(out.mode, EpochMode::Full);
    }

    #[test]
    fn ingest_marks_dirty_only_when_the_sketch_median_moves() {
        let values = inputs(64);
        let queries = [QuantileQuery::new(0.5, 0.125)];
        let mut svc = QuantileService::new(
            &values,
            &queries,
            ServiceConfig::default(),
            EngineConfig::with_seed(3),
        )
        .unwrap();
        svc.epoch().unwrap();
        assert_eq!(svc.dirty_nodes(), 0);
        // The initial singleton median shifts on the first divergent insert.
        svc.ingest(0, 55).unwrap();
        assert!(svc.dirty_nodes() <= 1);
        // Re-ingesting the current effective value never dirties.
        let eff = svc.effective_values()[1];
        svc.ingest(1, eff).unwrap();
        assert_eq!(svc.effective_values()[1], eff);
    }

    #[test]
    fn constructor_rejects_bad_parameters() {
        let values = inputs(16);
        let q = [QuantileQuery::new(0.5, 0.1)];
        let ec = EngineConfig::with_seed(0);
        assert!(
            QuantileService::new(&values[..1], &q, ServiceConfig::default(), ec.clone()).is_err()
        );
        assert!(QuantileService::new(&values, &[], ServiceConfig::default(), ec.clone()).is_err());
        assert!(QuantileService::new(
            &values,
            &[QuantileQuery::new(1.5, 0.1)],
            ServiceConfig::default(),
            ec.clone()
        )
        .is_err());
        assert!(QuantileService::new(
            &values,
            &[QuantileQuery::new(0.5, 0.0)],
            ServiceConfig::default(),
            ec.clone()
        )
        .is_err());
        let bad = ServiceConfig {
            dirty_threshold: f64::NAN,
            ..ServiceConfig::default()
        };
        assert!(QuantileService::new(&values, &q, bad, ec.clone()).is_err());
        let bad = ServiceConfig {
            sketch_capacity: 0,
            ..ServiceConfig::default()
        };
        assert!(QuantileService::new(&values, &q, bad, ec).is_err());
    }

    #[test]
    fn per_query_costs_match_the_solo_round_formula() {
        let values = inputs(512);
        let queries = [
            QuantileQuery::new(0.3, 0.125),
            QuantileQuery::new(0.5, 0.06),
        ];
        let svc = QuantileService::new(
            &values,
            &queries,
            ServiceConfig::default(),
            EngineConfig::with_seed(4),
        )
        .unwrap();
        for (query, cost) in queries.iter().zip(svc.per_query()) {
            let solo = tournament_quantile(
                &values,
                query.phi,
                query.epsilon,
                &TournamentConfig::default(),
                EngineConfig::with_seed(4),
            )
            .unwrap();
            assert_eq!(cost.solo_rounds, solo.rounds);
        }
    }
}
