//! The paper's algorithms off the complete graph.
//!
//! Theorem 2.1 is proved for complete-graph uniform gossip; this suite checks
//! the empirical picture when the same algorithm runs on restricted
//! topologies (everything is seed-deterministic, so these are exact
//! replay checks, not statistical ones):
//!
//! * on a bounded-degree **expander** (seeded random regular graph) the
//!   tournament dynamics keep complete-graph-like accuracy — the
//!   Becchetti–Clementi–Natale phenomenon the ROADMAP's scenario axis is
//!   after;
//! * on a **ring** the locality of sampling destroys the rank guarantee —
//!   the complete-graph assumption is load-bearing there.
//!
//! The quantitative sweep across sizes lives in
//! `bench/benches/topology_quantile.rs` (`BENCH_topology.json`).

use gossip_net::{EngineConfig, Topology};
use quantile_gossip::approx::{tournament_quantile, TournamentConfig};

const N: usize = 10_000;
const PHI: f64 = 0.5;
const EPS: f64 = 0.05;

/// Rank errors (as fractions of n) of every node's output.
fn rank_errors(topology: Topology, seed: u64) -> Vec<f64> {
    let values: Vec<u64> = (0..N as u64).map(|i| (i * 7919) % 1_000_003).collect();
    let mut sorted = values.clone();
    sorted.sort_unstable();
    let config = EngineConfig::with_seed(seed).topology(topology);
    let out = tournament_quantile(&values, PHI, EPS, &TournamentConfig::default(), config)
        .expect("valid parameters");
    assert_eq!(out.outputs.len(), N);
    let target = (PHI * N as f64).ceil();
    out.outputs
        .iter()
        .map(|o| {
            let rank = sorted.partition_point(|v| v <= o) as f64;
            (rank - target).abs() / N as f64
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn within_eps(xs: &[f64]) -> f64 {
    xs.iter().filter(|&&e| e <= EPS).count() as f64 / xs.len() as f64
}

#[test]
fn tournament_on_an_expander_tracks_the_complete_graph() {
    for seed in [1u64, 2, 3] {
        let complete = rank_errors(Topology::Complete, seed);
        let expander = rank_errors(Topology::random_regular(16, 7), seed);
        // Complete graph: the Theorem 2.1 guarantee, with room to spare.
        assert_eq!(within_eps(&complete), 1.0, "seed {seed}");
        // Expander: every node still lands within ε, and the mean error
        // stays within a small constant factor of the complete graph's
        // (measured ≈ 0.006 vs ≈ 0.003 at this n).
        assert_eq!(within_eps(&expander), 1.0, "seed {seed}");
        assert!(
            mean(&expander) <= 0.02,
            "seed {seed}: expander mean rank error {}",
            mean(&expander)
        );
    }
}

#[test]
fn tournament_on_a_ring_visibly_degrades() {
    for seed in [1u64, 2, 3] {
        let ring = rank_errors(Topology::ring(2), seed);
        // Locality breaks the sampling argument: most nodes end up far from
        // the target rank (measured ≈ 10% within ε, mean error ≈ 0.25).
        assert!(
            within_eps(&ring) < 0.5,
            "seed {seed}: ring unexpectedly accurate ({} within eps)",
            within_eps(&ring)
        );
        assert!(
            mean(&ring) > 0.1,
            "seed {seed}: ring mean rank error only {}",
            mean(&ring)
        );
    }
}

#[test]
fn sub_engines_inherit_the_topology_end_to_end() {
    // A tournament run is two phases of sub-engines derived via
    // EngineConfig::sub; under a ring topology every contact in *both*
    // phases must stay within the ring neighbourhood. Indirect check: the
    // per-phase engines are constructed from the same config, so a
    // complete-graph phase 2 would restore near-perfect accuracy — which
    // the ring numbers above rule out. Direct check here: the config
    // carries the topology through sub() unchanged.
    let config = EngineConfig::with_seed(1).topology(Topology::ring(2));
    assert_eq!(config.sub(99).topology, Topology::ring(2));
    assert_eq!(config.sub(99).sub(7).topology, Topology::ring(2));
}
