//! Cross-crate conformance suite for the batched multi-query service.
//!
//! Two contracts, pinned exactly (no tolerance):
//!
//! 1. **Batched ≡ sequential.** A [`QuantileService`] epoch answering `q`
//!    queries through shared tournament rounds is *bit-identical*, lane by
//!    lane, to `q` independent [`tournament_quantile`] runs on the same
//!    [`EngineConfig`] seed — on every topology of the simulator and under a
//!    disruptive fault plan (churn + loss + stragglers + failures at once).
//! 2. **Incremental ≡ full.** After holders change between epochs, the
//!    sparse incremental replay returns exactly the answers (and round
//!    count) of a from-scratch recompute over the updated inputs.

use gossip_net::{
    ActiveSet, ChurnModel, Engine, EngineConfig, FailureModel, FaultPlan, LaneMatrix, LossModel,
    StragglerModel, Topology,
};
use quantile_gossip::{
    tournament_quantile, EpochMode, QuantileQuery, QuantileService, ServiceConfig, Sourced,
    TournamentConfig,
};

/// 144 nodes: divisible into the 12×12 grid `Topology::Torus2D` needs.
const N: usize = 144;

fn values(n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(2_654_435_761) % 100_000)
        .collect()
}

fn queries() -> Vec<QuantileQuery> {
    vec![
        QuantileQuery::new(0.5, 0.05),
        QuantileQuery::new(0.25, 0.08),
        QuantileQuery::new(0.9, 0.03),
    ]
}

/// Every topology from the pluggable-topology layer (PR 4).
fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("complete", Topology::Complete),
        ("random_regular", Topology::random_regular(16, 7)),
        ("ring", Topology::ring(8)),
        ("torus2d", Topology::Torus2D),
    ]
}

/// Churn, loss, stragglers and Section 5 failures, all at once. Pulls never
/// straggle in the engine, but the model stays on to prove the service's
/// round decomposition survives the full plan.
fn disruptive_plan() -> FaultPlan {
    FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.05, 2).unwrap())
        .with_loss(LossModel::uniform(0.15).unwrap())
        .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap())
        .with_failure(FailureModel::uniform(0.1).unwrap())
}

/// Batched epoch vs `q` sequential solo runs on a paired seed: bit-identity
/// per lane, and the per-query round accounting must match what the solo
/// runs actually spent.
fn assert_batched_matches_sequential(name: &str, engine_config: EngineConfig) {
    let vals = values(N);
    let qs = queries();
    let mut svc =
        QuantileService::new(&vals, &qs, ServiceConfig::default(), engine_config.clone()).unwrap();
    let out = svc.epoch().unwrap();
    assert_eq!(out.mode, EpochMode::Full);

    let mut solo_rounds_total = 0u64;
    for (i, q) in qs.iter().enumerate() {
        let solo = tournament_quantile(
            &vals,
            q.phi,
            q.epsilon,
            &TournamentConfig::default(),
            engine_config.clone(),
        )
        .unwrap();
        assert_eq!(
            out.answers[i], solo.outputs,
            "lane {i} (phi={}, eps={}) diverged from its solo run on {name}",
            q.phi, q.epsilon
        );
        assert_eq!(
            out.per_query[i].solo_rounds, solo.rounds,
            "per-query accounting disagrees with the actual solo run on {name}"
        );
        solo_rounds_total += solo.rounds;
    }
    // The shared rounds amortise: one epoch costs at most the longest solo
    // schedule, strictly less than running the queries back to back.
    assert!(
        out.rounds < solo_rounds_total,
        "no amortisation on {name}: {} batched vs {} sequential rounds",
        out.rounds,
        solo_rounds_total
    );
    assert!(out.amortisation() > 1.0);
}

#[test]
fn batched_epoch_is_bit_identical_to_sequential_runs_on_every_topology() {
    for (name, topo) in topologies() {
        let ec = EngineConfig::with_seed(4242).topology(topo);
        assert_batched_matches_sequential(name, ec);
    }
}

#[test]
fn batched_epoch_is_bit_identical_to_sequential_runs_under_faults() {
    for (name, topo) in topologies() {
        let ec = EngineConfig::with_seed(97)
            .topology(topo)
            .fault(disruptive_plan());
        assert_batched_matches_sequential(name, ec);
    }
}

/// Runs an epoch, mutates a few holders, and checks the incremental second
/// epoch against a from-scratch service over the mutated inputs.
fn assert_incremental_matches_full(name: &str, engine_config: EngineConfig) {
    let mut vals = values(N);
    let qs = queries();
    let cfg = ServiceConfig::default();
    let mut svc = QuantileService::new(&vals, &qs, cfg, engine_config.clone()).unwrap();
    svc.epoch().unwrap();

    let edits: [(usize, u64); 4] = [(3, 1), (77, 999_999), (110, 50_000), (143, 0)];
    for (node, value) in edits {
        svc.set_value(node, value).unwrap();
        vals[node] = value;
    }
    assert!(
        svc.dirty_fraction() <= cfg.dirty_threshold,
        "test must take the incremental path"
    );
    let inc = svc.epoch().unwrap();
    assert!(
        matches!(inc.mode, EpochMode::Incremental { dirty_nodes, .. } if dirty_nodes <= edits.len()),
        "expected an incremental epoch on {name}, got {:?}",
        inc.mode
    );

    let mut fresh = QuantileService::new(&vals, &qs, cfg, engine_config).unwrap();
    let full = fresh.epoch().unwrap();
    assert_eq!(
        inc.answers, full.answers,
        "incremental replay diverged from the full recompute on {name}"
    );
    assert_eq!(
        inc.rounds, full.rounds,
        "round accounting diverged on {name}"
    );
}

#[test]
fn incremental_recompute_equals_full_recompute_on_every_topology() {
    for (name, topo) in topologies() {
        let ec = EngineConfig::with_seed(271).topology(topo);
        assert_incremental_matches_full(name, ec);
    }
}

#[test]
fn incremental_recompute_equals_full_recompute_under_faults() {
    for (name, topo) in topologies() {
        let ec = EngineConfig::with_seed(31)
            .topology(topo)
            .fault(disruptive_plan());
        assert_incremental_matches_full(name, ec);
    }
}

/// The ingestion path: holders absorb observations through their compactor
/// sketches, only moved medians mark holders dirty, and the incremental
/// epoch over the effective values equals a full recompute over them.
#[test]
fn incremental_epoch_after_sketch_ingestion_matches_full_recompute() {
    let vals = values(N);
    let qs = queries();
    let cfg = ServiceConfig::default();
    let ec = EngineConfig::with_seed(555).fault(disruptive_plan());
    let mut svc = QuantileService::new(&vals, &qs, cfg, ec.clone()).unwrap();
    svc.epoch().unwrap();

    // A burst of observations on a handful of holders; repeated inserts move
    // each sketch median decisively.
    for node in [5usize, 40, 90] {
        for obs in 0..8u64 {
            svc.ingest(node, 200_000 + obs * 1_000 + node as u64)
                .unwrap();
        }
    }
    assert!(svc.dirty_nodes() >= 1, "ingestion never moved a median");
    assert!(svc.dirty_fraction() <= cfg.dirty_threshold);

    let effective = svc.effective_values().to_vec();
    let inc = svc.epoch().unwrap();
    assert!(matches!(inc.mode, EpochMode::Incremental { .. }));

    let mut fresh = QuantileService::new(&effective, &qs, cfg, ec).unwrap();
    let full = fresh.epoch().unwrap();
    assert_eq!(inc.answers, full.answers);
    assert_eq!(inc.rounds, full.rounds);
}

/// A single-query service must agree with the solo run too (the q=1 edge of
/// the batching argument), and a no-op second epoch must reuse the cache.
#[test]
fn single_query_service_and_clean_epoch_edge_cases() {
    let vals = values(N);
    let qs = [QuantileQuery::new(0.33, 0.06)];
    let ec = EngineConfig::with_seed(808).topology(Topology::ring(8));
    let mut svc = QuantileService::new(&vals, &qs, ServiceConfig::default(), ec.clone()).unwrap();
    let first = svc.epoch().unwrap();
    let solo = tournament_quantile(&vals, 0.33, 0.06, &TournamentConfig::default(), ec).unwrap();
    assert_eq!(first.answers[0], solo.outputs);
    assert_eq!(first.rounds, solo.rounds);

    // Nothing changed: the second epoch is incremental with zero dirty
    // holders and identical answers.
    let second = svc.epoch().unwrap();
    assert_eq!(
        second.mode,
        EpochMode::Incremental {
            dirty_nodes: 0,
            dirty_fraction: 0.0
        }
    );
    assert_eq!(second.answers, first.answers);
}

/// Fusing the whole epoch into one resident pool session is pure scheduling:
/// a fused epoch must be bit-identical — answers, rounds and communication
/// metrics — to the same epoch run with one pool dispatch per round.
#[test]
fn fused_epoch_is_bit_identical_to_the_unfused_loop() {
    let vals = values(N);
    let qs = queries();
    for fault in [FaultPlan::none(), disruptive_plan()] {
        let ec = EngineConfig::with_seed(1618)
            .topology(Topology::random_regular(16, 7))
            .fault(fault);
        let mut fused =
            QuantileService::new(&vals, &qs, ServiceConfig::default(), ec.clone()).unwrap();
        let mut looped = QuantileService::new(&vals, &qs, ServiceConfig::default(), ec).unwrap();
        let f = fused.recompute_full().unwrap();
        let l = looped.recompute_full_unfused().unwrap();
        assert_eq!(f.answers, l.answers, "fused epoch diverged from the loop");
        assert_eq!(f.rounds, l.rounds);
        assert_eq!(f.metrics, l.metrics);
    }
}

/// The flat lane-major collector behind the service's hot path
/// ([`Engine::collect_lanes`] / [`Engine::collect_lanes_on`]) must realise
/// exactly the draws, deliveries and metrics of the nested
/// `collect_samples(1, ..)` construction serving [`Sourced`] lane vectors —
/// dense and sparse, reliable and under failures.
#[test]
fn lane_matrix_collection_matches_nested_sample_collection() {
    let (n, q) = (200usize, 3usize);
    let lane_values: Vec<u64> = (0..(n * q) as u64)
        .map(|x| x.wrapping_mul(2_654_435_761) % 1_000_000)
        .collect();
    let faults = [
        FaultPlan::none(),
        FaultPlan::none().with_failure(FailureModel::uniform(0.3).unwrap()),
    ];
    for fault in faults {
        let ec = EngineConfig::with_seed(2024).fault(fault);
        let mut flat: Engine<()> = Engine::from_states(vec![(); n], ec.clone());
        let mut nested: Engine<()> = Engine::from_states(vec![(); n], ec);
        let mut matrix = LaneMatrix::empty(n, q, 0u64);
        let active = ActiveSet::from_fn(n, |v| v % 3 != 0);
        for round in 0..6 {
            if round % 2 == 0 {
                flat.collect_lanes(&lane_values, &mut matrix);
                let buckets = nested.collect_samples(1, |t, _| {
                    Sourced::new(t, lane_values[t * q..(t + 1) * q].to_vec())
                });
                for (v, bucket) in buckets.iter().enumerate() {
                    match bucket.first() {
                        Some(msg) => {
                            assert_eq!(matrix.source(v), Some(msg.source));
                            assert_eq!(matrix.row(v).unwrap(), &msg.values[..]);
                        }
                        None => assert_eq!(matrix.source(v), None),
                    }
                }
            } else {
                flat.collect_lanes_on(&active, &lane_values, &mut matrix);
                let buckets = nested.collect_samples_on(&active, 1, |t, _| {
                    Sourced::new(t, lane_values[t * q..(t + 1) * q].to_vec())
                });
                for v in 0..n {
                    let reference = active.rank(v).and_then(|rk| buckets[rk].first());
                    match reference {
                        Some(msg) => {
                            assert_eq!(matrix.source(v), Some(msg.source));
                            assert_eq!(matrix.row(v).unwrap(), &msg.values[..]);
                        }
                        None => assert_eq!(matrix.source(v), None),
                    }
                }
            }
        }
        // Same rounds, attempts, failures, deliveries and bits — `Sourced`'s
        // `MessageSize` counts the payload alone, exactly like the flat
        // collector's per-row accounting.
        assert_eq!(flat.metrics(), nested.metrics());
    }
}

/// The pool-parallel lane apply (full epochs) and the pool-parallel dirty
/// replay (incremental epochs) are chunked over worker threads; results must
/// not depend on the thread count.
#[test]
fn epochs_are_deterministic_across_thread_counts() {
    let vals = values(N);
    let qs = queries();
    let edits: [(usize, u64); 4] = [(3, 1), (77, 999_999), (110, 50_000), (143, 0)];
    let run = |threads: usize| {
        let ec = EngineConfig::with_seed(909).fault(disruptive_plan());
        let mut svc = QuantileService::new(&vals, &qs, ServiceConfig::default(), ec).unwrap();
        svc.set_threads(threads);
        let full = svc.epoch().unwrap();
        assert_eq!(full.mode, EpochMode::Full);
        for (node, value) in edits {
            svc.set_value(node, value).unwrap();
        }
        let inc = svc.epoch().unwrap();
        assert!(matches!(inc.mode, EpochMode::Incremental { .. }));
        (full.answers, full.rounds, full.metrics, inc.answers)
    };
    let reference = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(
            reference, other,
            "epoch results changed at {threads} threads"
        );
    }
}
