//! Parallel trial runner with deterministic per-trial seeds.
//!
//! Every experiment repeats a randomized simulation over many independent
//! trials. Trials are embarrassingly parallel; this module fans them out over
//! `std::thread::scope` workers while keeping the seed of each trial a pure
//! function of the master seed and the trial index, so a single number
//! reproduces any reported row.
//!
//! [`run_topology_trials`] adds the topology axis: the same trial grid
//! repeated per communication [`Topology`], with **identical per-trial seeds
//! across topologies** — so topology comparisons are paired (same inputs,
//! same gossip coins, only the graph differs), the design the
//! `topology_quantile` bench and `examples/topology_sweep.rs` report from.

use gossip_net::{SeedSequence, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Describes a batch of trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialSpec {
    /// Master seed; trial `i` receives seed `SeedSequence::new(master).seed_at(i)`.
    pub master_seed: u64,
    /// Number of independent trials.
    pub trials: usize,
    /// Maximum worker threads (capped at the number of trials).
    pub threads: usize,
}

impl TrialSpec {
    /// A spec with a sensible thread count for the local machine.
    pub fn new(master_seed: u64, trials: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4);
        TrialSpec {
            master_seed,
            trials,
            threads,
        }
    }

    /// The seed of trial `i`.
    pub fn seed_of(&self, i: usize) -> u64 {
        SeedSequence::new(self.master_seed).seed_at(i as u64)
    }
}

/// Runs `f(trial_index, trial_seed)` for every trial in parallel and returns
/// the results in trial order.
///
/// # Panics
///
/// Panics if any trial panics (the panic is propagated when the worker is
/// joined).
pub fn run_trials<T, F>(spec: &TrialSpec, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let n = spec.trials;
    if n == 0 {
        return Vec::new();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = spec.threads.clamp(1, n);

    std::thread::scope(|scope| {
        let (f, results, next) = (&f, &results, &next);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = f(i, spec.seed_of(i));
                    results.lock().expect("result lock poisoned")[i] = Some(out);
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("a trial panicked");
        }
    });

    results
        .into_inner()
        .expect("result lock poisoned")
        .into_iter()
        .map(|r| r.expect("every trial produces a result"))
        .collect()
}

/// Runs the full trial grid once per topology and returns the results in
/// topology-major order (`result[t][i]` is trial `i` under `topologies[t]`).
///
/// Trial `i` receives the **same** seed under every topology, so per-trial
/// differences between topologies are attributable to the graph alone.
///
/// # Panics
///
/// Panics if any trial panics.
pub fn run_topology_trials<T, F>(spec: &TrialSpec, topologies: &[Topology], f: F) -> Vec<Vec<T>>
where
    T: Send,
    F: Fn(&Topology, usize, u64) -> T + Sync,
{
    topologies
        .iter()
        .map(|topology| run_trials(spec, |i, seed| f(topology, i, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let spec = TrialSpec::new(99, 50);
        let seeds: Vec<u64> = (0..50).map(|i| spec.seed_of(i)).collect();
        let again: Vec<u64> = (0..50).map(|i| spec.seed_of(i)).collect();
        assert_eq!(seeds, again);
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 50);
    }

    #[test]
    fn results_come_back_in_trial_order() {
        let spec = TrialSpec {
            master_seed: 1,
            trials: 64,
            threads: 8,
        };
        let out = run_trials(&spec, |i, _seed| i * 2);
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_is_fine() {
        let spec = TrialSpec {
            master_seed: 1,
            trials: 0,
            threads: 4,
        };
        let out: Vec<u64> = run_trials(&spec, |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn topology_trials_pair_seeds_across_topologies() {
        let spec = TrialSpec {
            master_seed: 5,
            trials: 8,
            threads: 4,
        };
        let topologies = [Topology::Complete, Topology::ring(2), Topology::Torus2D];
        let out = run_topology_trials(&spec, &topologies, |t, i, seed| (*t, i, seed));
        assert_eq!(out.len(), 3);
        for (t, rows) in out.iter().enumerate() {
            assert_eq!(rows.len(), 8);
            for (i, &(topo, trial, seed)) in rows.iter().enumerate() {
                assert_eq!(topo, topologies[t]);
                assert_eq!(trial, i);
                // Same trial index ⇒ same seed under every topology.
                assert_eq!(seed, out[0][i].2);
            }
        }
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let serial = TrialSpec {
            master_seed: 7,
            trials: 20,
            threads: 1,
        };
        let parallel = TrialSpec {
            master_seed: 7,
            trials: 20,
            threads: 8,
        };
        let a = run_trials(&serial, |i, seed| (i, seed, seed % 17));
        let b = run_trials(&parallel, |i, seed| (i, seed, seed % 17));
        assert_eq!(a, b);
    }
}
