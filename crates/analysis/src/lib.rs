//! # analysis
//!
//! Measurement substrate for the gossip-quantiles reproduction: everything the
//! experiment harness needs that is *not* a gossip algorithm.
//!
//! * [`rank`] — an exact rank/quantile oracle over the input multiset, used to
//!   grade algorithm outputs;
//! * [`workload`] — input-value generators (uniform, clustered, Zipf-like,
//!   adversarial, sensor-field) used across the experiments;
//! * [`stats`] — summary statistics over repeated trials;
//! * [`experiment`] — a small parallel trial runner with deterministic
//!   per-trial seeds;
//! * [`report`] — fixed-width table and CSV emitters for EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiment;
pub mod rank;
pub mod report;
pub mod stats;
pub mod workload;

pub use experiment::{run_topology_trials, run_trials, TrialSpec};
pub use rank::RankOracle;
pub use report::{Csv, ServiceQueryRow, Table};
pub use stats::Summary;
pub use workload::Workload;
