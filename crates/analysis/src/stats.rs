//! Summary statistics over repeated trials.

/// Summary statistics of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 observations).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Median observation.
    pub median: f64,
    /// 95th-percentile observation.
    pub p95: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(values.iter().all(|v| !v.is_nan()), "sample contains NaN");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let pick = |q: f64| sorted[((q * (count as f64 - 1.0)).floor() as usize).min(count - 1)];
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: pick(0.5),
            p95: pick(0.95),
            max: sorted[count - 1],
        }
    }

    /// Convenience for integer samples (e.g. round counts).
    pub fn of_u64(values: &[u64]) -> Summary {
        let as_f: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        Summary::of(&as_f)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.2} ± {:.2} (min {:.2}, median {:.2}, p95 {:.2}, max {:.2}, n={})",
            self.mean, self.std_dev, self.min, self.median, self.p95, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - 1.5811).abs() < 1e-3);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn of_u64_and_display() {
        let s = Summary::of_u64(&[10, 20, 30]);
        assert_eq!(s.mean, 20.0);
        let text = s.to_string();
        assert!(text.contains("mean 20.00"));
        assert!(text.contains("n=3"));
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&values);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p95, 95.0);
    }
}
