//! Input-value generators for the experiments.
//!
//! The quantile algorithms are distribution-free — they only compare values —
//! but the experiments exercise them on several shapes anyway to demonstrate
//! that the round counts and accuracy are insensitive to the input
//! distribution, including adversarially ordered and heavily tied inputs.

use gossip_net::SeedSequence;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A named input-value distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A random permutation of `0..n` scaled by a constant (all values distinct).
    UniformDistinct,
    /// Independent uniform draws from a domain much smaller than `n`
    /// (many ties).
    HeavyTies,
    /// A Zipf-like heavy-tailed distribution (most values tiny, a few huge).
    HeavyTail,
    /// Two tight clusters far apart (stress-tests quantiles near the gap).
    Bimodal,
    /// Sorted ramp assigned to node ids in order — the "adversarial" placement
    /// in which node id correlates perfectly with rank.
    SortedRamp,
    /// A smooth synthetic sensor temperature field with hot spots (the
    /// motivating scenario in the paper's introduction).
    SensorField,
}

impl Workload {
    /// All workloads, for sweep-style experiments.
    pub fn all() -> [Workload; 6] {
        [
            Workload::UniformDistinct,
            Workload::HeavyTies,
            Workload::HeavyTail,
            Workload::Bimodal,
            Workload::SortedRamp,
            Workload::SensorField,
        ]
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::UniformDistinct => "uniform-distinct",
            Workload::HeavyTies => "heavy-ties",
            Workload::HeavyTail => "heavy-tail",
            Workload::Bimodal => "bimodal",
            Workload::SortedRamp => "sorted-ramp",
            Workload::SensorField => "sensor-field",
        }
    }

    /// Generates `n` values for this workload from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(SeedSequence::new(seed).fork(7).next_seed());
        match self {
            Workload::UniformDistinct => {
                let mut values: Vec<u64> = (0..n as u64).map(|i| i * 1000 + 13).collect();
                // Fisher–Yates shuffle so node id is independent of rank.
                for i in (1..values.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    values.swap(i, j);
                }
                values
            }
            Workload::HeavyTies => {
                let domain = (n as u64 / 50).max(2);
                (0..n).map(|_| rng.gen_range(0..domain)).collect()
            }
            Workload::HeavyTail => (0..n)
                .map(|_| {
                    // Discrete Pareto-ish: value = floor(1/u^2) capped.
                    let u: f64 = rng.gen_range(1e-6..1.0);
                    ((1.0 / (u * u)) as u64).min(1_000_000_000)
                })
                .collect(),
            Workload::Bimodal => (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range(0..1000)
                    } else {
                        rng.gen_range(1_000_000..1_001_000)
                    }
                })
                .collect(),
            Workload::SortedRamp => (0..n as u64).map(|i| i * 7 + 3).collect(),
            Workload::SensorField => (0..n)
                .map(|i| {
                    // Base temperature 20.00°C with two hot spots along a line
                    // of sensors, plus measurement noise; stored in centi-°C.
                    let x = i as f64 / n.max(1) as f64;
                    let hot1 = 8.0 * (-((x - 0.3) * 20.0).powi(2)).exp();
                    let hot2 = 15.0 * (-((x - 0.8) * 30.0).powi(2)).exp();
                    let noise: f64 = rng.gen_range(-0.5..0.5);
                    ((20.0 + hot1 + hot2 + noise) * 100.0) as u64
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_workload_generates_n_values_deterministically() {
        for w in Workload::all() {
            let a = w.generate(500, 42);
            let b = w.generate(500, 42);
            let c = w.generate(500, 43);
            assert_eq!(a.len(), 500, "{}", w.name());
            assert_eq!(a, b, "{} not deterministic", w.name());
            if w != Workload::SortedRamp {
                assert_ne!(a, c, "{} ignores the seed", w.name());
            }
        }
    }

    #[test]
    fn uniform_distinct_is_distinct_and_shuffled() {
        let v = Workload::UniformDistinct.generate(2000, 7);
        let set: HashSet<u64> = v.iter().copied().collect();
        assert_eq!(set.len(), 2000);
        // Shuffled: the first 100 node ids should not all hold the 100 smallest values.
        let small = v.iter().take(100).filter(|&&x| x < 100 * 1000).count();
        assert!(small < 50);
    }

    #[test]
    fn heavy_ties_has_many_duplicates() {
        let v = Workload::HeavyTies.generate(5000, 3);
        let set: HashSet<u64> = v.iter().copied().collect();
        assert!(set.len() < 300, "{} distinct values", set.len());
    }

    #[test]
    fn bimodal_has_two_clusters() {
        let v = Workload::Bimodal.generate(4000, 5);
        let low = v.iter().filter(|&&x| x < 1000).count();
        let high = v.iter().filter(|&&x| x >= 1_000_000).count();
        assert_eq!(low + high, 4000);
        assert!(low > 1500 && high > 1500);
    }

    #[test]
    fn sensor_field_values_are_plausible_temperatures() {
        let v = Workload::SensorField.generate(3000, 9);
        assert!(v.iter().all(|&t| (1900..4000).contains(&t)));
        // The hot spots push the maximum well above the 20°C baseline.
        assert!(*v.iter().max().unwrap() > 3000);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = Workload::all().iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
