//! Fixed-width table and CSV emitters.
//!
//! The `reproduce` binary prints one table per experiment; EXPERIMENTS.md is
//! assembled from these tables. CSV output is provided for plotting.
//! [`round_budget_table`] renders the per-primitive round breakdown that
//! [`Metrics`] meters (`pull_rounds` / `push_rounds` / `push_pull_rounds`);
//! [`service_table`] renders the per-lane amortisation of a batched
//! multi-query epoch.

use gossip_net::Metrics;
use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn add_row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as fixed-width text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {c:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Renders labelled [`Metrics`] as a round-budget table broken down per
/// primitive — one row per entry, with total rounds, the per-kind round
/// counts, the participant accounting (mean active nodes per round and the
/// single-round maximum — where an algorithm's sparse phases show up as
/// `mean-active ≪ max-active`), and the message/bit totals. This is how an
/// experiment shows *where* an algorithm's round budget goes (e.g. the exact
/// algorithm's mix of push-sum pull rounds vs rumor-spreading push–pull
/// rounds, or a token-scattering phase touching only `o(n)` senders).
///
/// The trailing `dispatches` / `wakeups` columns render the scheduling
/// counters (`Metrics::pool_dispatches`, `Metrics::worker_wakeups`): on a
/// fused round program the whole schedule costs one dispatch, so a
/// `rounds ≫ dispatches` row makes the fusion's savings observable instead
/// of inferred from wall clock.
pub fn round_budget_table(title: impl Into<String>, entries: &[(String, Metrics)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "algorithm",
            "rounds",
            "pull",
            "push",
            "push-pull",
            "mean-active",
            "max-active",
            "messages",
            "bits",
            "dispatches",
            "wakeups",
        ],
    );
    for (label, m) in entries {
        table.add_row(&[
            label.clone(),
            m.rounds.to_string(),
            m.pull_rounds.to_string(),
            m.push_rounds.to_string(),
            m.push_pull_rounds.to_string(),
            format!("{:.1}", m.mean_active()),
            m.max_active.to_string(),
            m.messages_delivered.to_string(),
            m.bits_delivered.to_string(),
            m.pool_dispatches.to_string(),
            m.worker_wakeups.to_string(),
        ]);
    }
    table
}

/// Renders labelled [`Metrics`] as a fault-injection table — one row per
/// entry, with the operation attempts, the terminal outcomes the fault plan
/// inflicted (crashed node-rounds, dropped and delayed messages, failed
/// operations), and the resulting per-round disturbance rate (the measured
/// `μ̂` an adaptive schedule compensates for). This is how a robustness
/// experiment shows *how much* chaos a run actually absorbed, next to the
/// accuracy it still achieved.
pub fn fault_table(title: impl Into<String>, entries: &[(String, Metrics)]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "algorithm",
            "attempts",
            "crashed",
            "dropped",
            "delayed",
            "failed",
            "delivered",
            "disturbance",
        ],
    );
    for (label, m) in entries {
        table.add_row(&[
            label.clone(),
            (m.pulls_attempted + m.pushes_attempted).to_string(),
            m.crashed_operations.to_string(),
            m.messages_dropped.to_string(),
            m.messages_delayed.to_string(),
            m.failed_operations.to_string(),
            m.messages_delivered.to_string(),
            format!("{:.4}", m.disturbance_rate()),
        ]);
    }
    table
}

/// One query lane of a batched multi-query epoch, for [`service_table`].
///
/// Plain numbers rather than a service type: `analysis` is the measurement
/// substrate and stays independent of the algorithm crates above `gossip-net`.
#[derive(Debug, Clone)]
pub struct ServiceQueryRow {
    /// Human label for the lane, e.g. `"phi=0.50 eps=0.05"`.
    pub label: String,
    /// Phase I iterations of the lane's solo schedule.
    pub phase1_iterations: usize,
    /// Phase II iterations of the lane's solo schedule.
    pub phase2_iterations: usize,
    /// Rounds a solo run of this query alone would spend.
    pub solo_rounds: u64,
}

/// Renders a batched multi-query epoch as a table: one row per query lane
/// with its solo round cost, then a `batched epoch` summary row with the
/// shared rounds the epoch actually spent and the amortisation factor
/// `Σᵢ solo_roundsᵢ / shared_rounds`. This is how an experiment shows the
/// q-fold round saving of answering a query vector through shared
/// tournament rounds instead of back-to-back solo runs.
pub fn service_table(
    title: impl Into<String>,
    shared_rounds: u64,
    lanes: &[ServiceQueryRow],
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "query",
            "phase-I iters",
            "phase-II iters",
            "rounds",
            "amortisation",
        ],
    );
    for lane in lanes {
        table.add_row(&[
            lane.label.clone(),
            lane.phase1_iterations.to_string(),
            lane.phase2_iterations.to_string(),
            lane.solo_rounds.to_string(),
            "-".to_string(),
        ]);
    }
    let solo_total: u64 = lanes.iter().map(|l| l.solo_rounds).sum();
    let amortisation = if shared_rounds == 0 {
        0.0
    } else {
        solo_total as f64 / shared_rounds as f64
    };
    table.add_row(&[
        format!("batched epoch ({} queries)", lanes.len()),
        "-".to_string(),
        "-".to_string(),
        shared_rounds.to_string(),
        format!("{amortisation:.1}x"),
    ]);
    table
}

/// A minimal CSV writer (comma-separated, quotes fields containing commas).
#[derive(Debug, Clone, Default)]
pub struct Csv {
    lines: Vec<String>,
}

impl Csv {
    /// Creates a CSV document with a header row.
    pub fn new(headers: &[&str]) -> Self {
        let mut csv = Csv::default();
        csv.push_row(headers);
        csv
    }

    /// Appends a row of string-ish fields.
    pub fn push_row<S: AsRef<str>>(&mut self, fields: &[S]) -> &mut Self {
        let encoded: Vec<String> = fields
            .iter()
            .map(|f| {
                let f = f.as_ref();
                if f.contains(',') || f.contains('"') {
                    format!("\"{}\"", f.replace('"', "\"\""))
                } else {
                    f.to_string()
                }
            })
            .collect();
        self.lines.push(encoded.join(","));
        self
    }

    /// Renders the document.
    pub fn render(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// Number of rows including the header.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the document is empty (no header, no rows).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("E1: exact quantile", &["n", "rounds", "answer ok"]);
        t.add_row(&["1024".into(), "210".into(), "yes".into()]);
        t.add_row(&["1048576".into(), "460".into(), "yes".into()]);
        let out = t.render();
        assert!(out.contains("## E1: exact quantile"));
        assert!(out.contains("| n       | rounds | answer ok |"));
        assert!(out.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(&["only one".into()]);
    }

    #[test]
    fn round_budget_table_breaks_rounds_down_per_kind() {
        use gossip_net::{Engine, EngineConfig};
        let mut e = Engine::from_states((0..32u64).collect(), EngineConfig::with_seed(1));
        e.pull_round(|_, &s| s, |_, _, _| {});
        e.pull_round(|_, &s| s, |_, _, _| {});
        e.push_round(|_, &s| Some(s), |_, _, _| {}, |_, _, _| {});
        e.push_pull_round(|_, &s| s, |_, _, _| {});
        let table = round_budget_table("round budget", &[("mixed".to_string(), e.metrics())]);
        let out = table.render();
        assert!(out.contains("push-pull"));
        assert!(out.contains("mean-active"));
        assert!(out.contains("max-active"));
        assert!(out.contains("dispatches"));
        assert!(out.contains("wakeups"));
        let row = out.lines().last().unwrap();
        // rounds=4, pull=2, push=1, push-pull=1; all rounds dense → active=32.
        assert!(row.contains("| 4"), "{row}");
        assert!(row.contains("| 2"), "{row}");
        assert!(row.contains("| 32.0"), "{row}");
        assert!(row.contains("| 32 "), "{row}");
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn round_budget_table_shows_sparse_activity() {
        use gossip_net::{ActiveSet, Engine, EngineConfig};
        let mut e = Engine::from_states((0..64u64).collect(), EngineConfig::with_seed(2));
        e.pull_round(|_, &s| s, |_, _, _| {});
        let active = ActiveSet::from_members(64, 0..8).unwrap();
        e.pull_round_on(&active, |_, &s| s, |_, _, _| {});
        let table = round_budget_table("sparse budget", &[("mixed".to_string(), e.metrics())]);
        let row = table.render().lines().last().unwrap().to_string();
        // (64 + 8) participants over 2 rounds → mean 36, max 64.
        assert!(row.contains("| 36.0"), "{row}");
        assert!(row.contains("| 64 "), "{row}");
    }

    #[test]
    fn fault_table_renders_the_fault_counters() {
        use gossip_net::{ChurnModel, Engine, EngineConfig, FaultPlan, LossModel, StragglerModel};
        let plan = FaultPlan::none()
            .with_churn(ChurnModel::with_rejoin(0.1, 2).unwrap())
            .with_loss(LossModel::uniform(0.2).unwrap())
            .with_stragglers(StragglerModel::uniform(0.2, 2).unwrap());
        let mut e = Engine::from_states(
            (0..512u64).collect(),
            EngineConfig::with_seed(3).fault(plan),
        );
        for _ in 0..4 {
            e.push_pull_round(|_, &s| s, |_, st, m| *st = (*st).max(m));
        }
        let m = e.metrics();
        assert!(m.messages_dropped > 0 && m.messages_delayed > 0);
        let table = fault_table("chaos", &[("push-pull".to_string(), m)]);
        let out = table.render();
        assert!(out.contains("disturbance"));
        let row = out.lines().last().unwrap();
        assert!(row.contains(&m.messages_dropped.to_string()), "{row}");
        assert!(row.contains(&m.messages_delayed.to_string()), "{row}");
        assert!(
            row.contains(&format!("{:.4}", m.disturbance_rate())),
            "{row}"
        );
    }

    #[test]
    fn service_table_sums_solo_rounds_into_the_amortisation_row() {
        let lanes = vec![
            ServiceQueryRow {
                label: "phi=0.25 eps=0.05".into(),
                phase1_iterations: 5,
                phase2_iterations: 6,
                solo_rounds: 43,
            },
            ServiceQueryRow {
                label: "phi=0.75 eps=0.05".into(),
                phase1_iterations: 5,
                phase2_iterations: 6,
                solo_rounds: 43,
            },
        ];
        let table = service_table("batched service", 43, &lanes);
        let out = table.render();
        assert!(out.contains("## batched service"));
        assert!(out.contains("amortisation"));
        let summary = out.lines().last().unwrap();
        // 86 solo rounds answered in 43 shared rounds → 2.0x.
        assert!(summary.contains("batched epoch (2 queries)"), "{summary}");
        assert!(summary.contains("| 43"), "{summary}");
        assert!(summary.contains("2.0x"), "{summary}");
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn service_table_handles_zero_shared_rounds() {
        let table = service_table("empty", 0, &[]);
        let out = table.render();
        assert!(out.lines().last().unwrap().contains("0.0x"));
    }

    #[test]
    fn csv_quotes_fields_with_commas() {
        let mut c = Csv::new(&["name", "value"]);
        c.push_row(&["plain", "1"]);
        c.push_row(&["with, comma", "2"]);
        c.push_row(&["with \"quote\"", "3"]);
        let out = c.render();
        assert!(out.starts_with("name,value\n"));
        assert!(out.contains("\"with, comma\",2"));
        assert!(out.contains("\"with \"\"quote\"\"\",3"));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }
}
