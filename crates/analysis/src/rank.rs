//! Exact rank and quantile oracle.
//!
//! The experiments grade every gossip output against the ground truth computed
//! centrally from the input multiset. Ranks are 1-based and quantiles follow
//! the paper's definition: the φ-quantile is the `⌈φ·n⌉`-th smallest value.

use gossip_net::NodeValue;

/// An exact rank oracle over a multiset of values.
#[derive(Debug, Clone)]
pub struct RankOracle<V> {
    sorted: Vec<V>,
}

impl<V: NodeValue> RankOracle<V> {
    /// Builds the oracle (O(n log n) centrally; this is measurement machinery,
    /// not part of any gossip algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn new(values: &[V]) -> Self {
        assert!(!values.is_empty(), "rank oracle needs at least one value");
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        RankOracle { sorted }
    }

    /// Number of values.
    pub fn n(&self) -> usize {
        self.sorted.len()
    }

    /// The number of values `≤ x` (the 1-based rank of `x` if present).
    pub fn rank(&self, x: &V) -> usize {
        self.sorted.partition_point(|v| v <= x)
    }

    /// The number of values `< x`.
    pub fn rank_strictly_below(&self, x: &V) -> usize {
        self.sorted.partition_point(|v| v < x)
    }

    /// The exact φ-quantile: the `⌈φ·n⌉`-th smallest value (clamped to `[1, n]`).
    pub fn quantile(&self, phi: f64) -> V {
        let n = self.sorted.len();
        let rank = ((phi * n as f64).ceil() as usize).clamp(1, n);
        self.sorted[rank - 1]
    }

    /// The quantile position of `x` in `[0, 1]`: `rank(x) / n`.
    pub fn quantile_of(&self, x: &V) -> f64 {
        self.rank(x) as f64 / self.sorted.len() as f64
    }

    /// The signed quantile error of `output` against the φ-quantile target.
    ///
    /// With ties, `output` occupies the whole rank interval
    /// `[#{< output}+1, #{≤ output}]`; the error is measured from the point of
    /// that interval closest to the target rank `⌈φ·n⌉` (so an exact quantile
    /// reports an error of 0), normalised by `n`.
    pub fn quantile_error(&self, output: &V, phi: f64) -> f64 {
        let n = self.sorted.len() as f64;
        let target = (phi * n).ceil().clamp(1.0, n);
        let lo = self.rank_strictly_below(output) as f64 + 1.0;
        let hi = self.rank(output) as f64;
        if target < lo {
            (lo - target) / n
        } else if target > hi {
            (hi - target) / n
        } else {
            0.0
        }
    }

    /// Whether `output` solves the ε-approximate φ-quantile problem: some rank
    /// it occupies lies in `[(φ−ε)n, (φ+ε)n]`.
    pub fn within_epsilon(&self, output: &V, phi: f64, epsilon: f64) -> bool {
        let n = self.sorted.len() as f64;
        let lo = self.rank_strictly_below(output) as f64 + 1.0;
        let hi = self.rank(output) as f64;
        hi >= ((phi - epsilon) * n).floor() && lo <= ((phi + epsilon) * n).ceil()
    }

    /// The worst absolute quantile error over a set of per-node outputs.
    pub fn worst_error(&self, outputs: &[V], phi: f64) -> f64 {
        outputs
            .iter()
            .map(|o| self.quantile_error(o, phi).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_input_panics() {
        let _ = RankOracle::<u64>::new(&[]);
    }

    #[test]
    fn rank_and_quantile_match_sorted_order() {
        let values = vec![50u64, 10, 40, 20, 30];
        let oracle = RankOracle::new(&values);
        assert_eq!(oracle.n(), 5);
        assert_eq!(oracle.rank(&10), 1);
        assert_eq!(oracle.rank(&35), 3);
        assert_eq!(oracle.rank(&50), 5);
        assert_eq!(oracle.rank(&5), 0);
        assert_eq!(oracle.quantile(0.0), 10);
        assert_eq!(oracle.quantile(0.5), 30);
        assert_eq!(oracle.quantile(1.0), 50);
        assert_eq!(oracle.quantile_of(&30), 0.6);
    }

    #[test]
    fn duplicate_values_are_handled() {
        let values = vec![7u64, 7, 7, 1, 9];
        let oracle = RankOracle::new(&values);
        assert_eq!(oracle.rank(&7), 4);
        assert_eq!(oracle.quantile(0.5), 7);
        assert!(oracle.within_epsilon(&7, 0.5, 0.0));
    }

    #[test]
    fn within_epsilon_accepts_the_band_and_rejects_outside() {
        let values: Vec<u64> = (1..=100).collect();
        let oracle = RankOracle::new(&values);
        assert!(oracle.within_epsilon(&50, 0.5, 0.0));
        assert!(oracle.within_epsilon(&45, 0.5, 0.05));
        assert!(!oracle.within_epsilon(&40, 0.5, 0.05));
        assert_eq!(oracle.worst_error(&[50, 55, 45], 0.5), 0.05);
    }

    #[test]
    fn quantile_error_is_zero_for_exact_answers() {
        let values: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        let oracle = RankOracle::new(&values);
        for phi in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let q = oracle.quantile(phi);
            assert_eq!(oracle.quantile_error(&q, phi), 0.0, "phi = {phi}");
        }
    }

    /// The oracle's quantile always equals the value found by sorting
    /// (seeded sweep over random multisets and φ).
    #[test]
    fn random_quantiles_match_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x07ac1e);
        for _ in 0..128 {
            let len = rng.gen_range(1usize..300);
            let values: Vec<u64> = (0..len).map(|_| rng.gen_range(0..10_000u64)).collect();
            let phi = rng.gen_range(0.0..=1.0f64);
            let oracle = RankOracle::new(&values);
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((phi * values.len() as f64).ceil() as usize).clamp(1, values.len());
            assert_eq!(
                oracle.quantile(phi),
                sorted[rank - 1],
                "len={len} phi={phi}"
            );
        }
    }

    /// Rank is monotone and bounded by n (seeded sweep).
    #[test]
    fn random_ranks_are_monotone() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x0b5e55);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..200);
            let values: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1000u64)).collect();
            let oracle = RankOracle::new(&values);
            let mut prev = 0;
            for x in 0..1000u64 {
                let r = oracle.rank(&x);
                assert!(r >= prev, "len={len} x={x}");
                assert!(r <= values.len(), "len={len} x={x}");
                prev = r;
            }
        }
    }
}
