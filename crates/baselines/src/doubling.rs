//! The buffer-doubling sampling algorithm of Appendix A.
//!
//! Each node `v` maintains a multiset buffer `S_v`, initialised with one
//! uniformly sampled value. In every round, `v` contacts a uniformly random
//! node `t(v)` and sets `S_v ← S_v ∪ S_{t(v)}`, so the buffer size roughly
//! doubles per round. After `O(log(log n / ε²)) = O(log log n + log 1/ε)`
//! rounds the buffer holds `Ω(log n / ε²)` values — not independent, but
//! (Lemma A.2) with multiplicities bounded well enough that the empirical
//! φ-quantile of the buffer is an ε-approximation w.h.p.
//!
//! The price is message size: whole buffers are exchanged, i.e.
//! `Θ(log² n / ε²)` bits per message. This trade-off is what experiment E8
//! measures against the `O(log n)`-bit tournament algorithm.

use crate::sampling::empirical_quantile;
use gossip_net::{Engine, EngineConfig, GossipError, Metrics, NodeValue, Result};

/// Configuration of the doubling algorithm.
#[derive(Debug, Clone)]
pub struct DoublingConfig {
    /// Target additive quantile error ε.
    pub epsilon: f64,
    /// Multiplier `c` in the target buffer size `⌈c · ln n / ε²⌉`.
    pub buffer_factor: f64,
    /// Hard cap on the per-node buffer size, to bound memory in experiments.
    pub max_buffer: usize,
}

impl DoublingConfig {
    /// Configuration targeting additive error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(GossipError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0, 1), got {epsilon}"),
            });
        }
        Ok(DoublingConfig {
            epsilon,
            buffer_factor: 2.0,
            max_buffer: 1 << 16,
        })
    }

    /// Target buffer size for a network of `n` nodes.
    pub fn target_buffer_size(&self, n: usize) -> usize {
        let n = n.max(2) as f64;
        let s = (self.buffer_factor * n.ln() / (self.epsilon * self.epsilon)).ceil() as usize;
        s.clamp(2, self.max_buffer)
    }
}

/// Result of the doubling algorithm.
#[derive(Debug, Clone)]
pub struct DoublingOutcome<V> {
    /// Per-node estimate of the φ-quantile.
    pub estimates: Vec<V>,
    /// Rounds executed (1 seeding round + the doubling rounds).
    pub rounds: u64,
    /// Communication metrics. `metrics.max_message_bits` exposes the
    /// `Θ(log² n/ε²)`-bit messages this algorithm needs.
    pub metrics: Metrics,
    /// The smallest per-node buffer size reached at the end.
    pub min_buffer_len: usize,
}

/// Every node estimates the φ-quantile of `values` with the doubling algorithm.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given, or
/// [`GossipError::InvalidParameter`] if `phi` is not in `[0, 1]`.
pub fn approximate_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    config: &DoublingConfig,
    engine_config: EngineConfig,
) -> Result<DoublingOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let target = config.target_buffer_size(values.len());

    // States: (own value, buffer). The buffer is seeded with one random pull,
    // exactly as in Appendix A ("Before the first round, each node v samples a
    // random node t0(v) and sets S_v(0) = {t0(v)}").
    let states: Vec<(V, Vec<V>)> = values.iter().map(|&v| (v, Vec::new())).collect();
    let mut engine = Engine::from_states(states, engine_config);

    engine.pull_round(
        |_, (own, _)| *own,
        |_, (own, buf), pulled| buf.push(pulled.unwrap_or(*own)),
    );

    // Doubling rounds until every buffer reaches the target size (the round
    // count is data-independent in the failure-free case: ⌈log2 target⌉).
    let max_rounds = 2 * ((target as f64).log2().ceil() as u64 + 2);
    let mut rounds = 1u64;
    while rounds < 1 + max_rounds {
        let done = engine.states().iter().all(|(_, buf)| buf.len() >= target);
        if done {
            break;
        }
        engine.pull_round(
            |_, (_, buf)| buf.clone(),
            |_, (_, buf), pulled| {
                if let Some(mut other) = pulled {
                    buf.append(&mut other);
                    buf.truncate(4 * target); // keep memory bounded; beyond the target extra samples don't help
                }
            },
        );
        rounds += 1;
    }

    let metrics = engine.metrics();
    let states = engine.into_states();
    let min_buffer_len = states.iter().map(|(_, b)| b.len()).min().unwrap_or(0);
    let estimates = states
        .into_iter()
        .map(|(own, mut buf)| {
            if buf.is_empty() {
                own
            } else {
                buf.sort_unstable();
                empirical_quantile(&buf, phi)
            }
        })
        .collect();
    Ok(DoublingOutcome {
        estimates,
        rounds,
        metrics,
        min_buffer_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_epsilon() {
        assert!(DoublingConfig::new(0.0).is_err());
        assert!(DoublingConfig::new(0.5).is_ok());
    }

    #[test]
    fn runs_in_doubly_logarithmic_rounds() {
        let values: Vec<u64> = (0..4000).collect();
        let cfg = DoublingConfig::new(0.1).unwrap();
        let out = approximate_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(2)).unwrap();
        // target ≈ 2·ln(4000)/0.01 ≈ 1660; ⌈log2⌉ ≈ 11 rounds of doubling.
        assert!(out.rounds <= 30, "rounds = {}", out.rounds);
        assert!(out.min_buffer_len >= cfg.target_buffer_size(4000) / 2);
    }

    #[test]
    fn median_estimates_are_accurate() {
        let values: Vec<u64> = (0..4000).collect();
        let cfg = DoublingConfig::new(0.1).unwrap();
        let out = approximate_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(7)).unwrap();
        let n = values.len() as f64;
        for &e in &out.estimates {
            let rank = e as f64 / n;
            assert!((rank - 0.5).abs() <= 0.15, "rank {rank}");
        }
    }

    #[test]
    fn messages_are_much_larger_than_o_log_n() {
        let values: Vec<u64> = (0..2000).collect();
        let cfg = DoublingConfig::new(0.1).unwrap();
        let out = approximate_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(3)).unwrap();
        // The whole point of E8: the doubling algorithm ships buffers of
        // Θ(log n/ε²) values, i.e. tens of kilobits, vs 64-bit tournaments.
        assert!(
            out.metrics.max_message_bits > 10_000,
            "{}",
            out.metrics.max_message_bits
        );
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = DoublingConfig::new(0.1).unwrap();
        assert!(approximate_quantile(&[1u64], 0.5, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(approximate_quantile(&[1u64, 2], -0.1, &cfg, EngineConfig::with_seed(0)).is_err());
    }
}
