//! # baselines
//!
//! Baseline gossip algorithms against which the paper's tournament algorithms
//! are compared, plus the classic gossip primitives the paper *uses* as
//! subroutines:
//!
//! * [`push_sum`] — Kempe, Dobra, Gehrke \[KDG03\]: sum / average / counting in
//!   `O(log n + log 1/ε)` rounds. Used by the exact quantile algorithm
//!   (Algorithm 3, Step 5) for rank counting, and measured on its own in
//!   experiment E10.
//! * [`rumor`] — push–pull rumor spreading \[FG85, Pit87\]: disseminating the
//!   global minimum / maximum in `O(log n)` rounds. Used by Algorithm 3, Step 4.
//! * [`sampling`] — the naive `O(log n / ε²)`-round quantile approximation by
//!   independent sampling (Section 1, "technical summary").
//! * [`doubling`] — the buffer-doubling algorithm of Appendix A:
//!   `O(log log n + log 1/ε)` rounds but `Θ(log² n / ε²)`-bit messages.
//! * [`compactor`] — the compaction variant of Appendix A.1 that shrinks the
//!   buffer to `O(1/ε · (log log n + log 1/ε))` entries.
//! * [`kdg_selection`] — the `O(log² n)`-round exact quantile computation of
//!   \[KDG03\] (randomized selection with gossip counting), the main baseline
//!   of experiment E1.
//! * [`median_rule`] — the 3-sample median rule of Doerr et al. \[DGM+11\],
//!   the closest prior dynamic to the paper's 3-TOURNAMENT.
//!
//! Every algorithm takes its input values and an
//! [`EngineConfig`](gossip_net::EngineConfig) (seed + failure model +
//! communication [`Topology`](gossip_net::Topology)), runs on its own
//! [`Engine`](gossip_net::Engine) and reports per-node outputs together
//! with the [`Metrics`](gossip_net::Metrics) it consumed, so round counts and
//! message bits are directly comparable with the paper's algorithms. Like the
//! paper's algorithms, the baselines run unchanged on non-complete
//! topologies — their classic `O(log n)` bounds (rumor spreading, push-sum)
//! hold on expanders but degrade to `Θ(diameter)` behaviour on rings and
//! grids, which `tests/topology.rs` pins for the rumor baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compactor;
pub mod doubling;
pub mod kdg_selection;
pub mod median_rule;
pub mod push_sum;
pub mod rumor;
pub mod sampling;

pub use compactor::{CompactorConfig, CompactorOutcome, CompactorSketch};
pub use doubling::{DoublingConfig, DoublingOutcome};
pub use kdg_selection::{KdgSelectionConfig, KdgSelectionOutcome};
pub use median_rule::{MedianRuleConfig, MedianRuleOutcome};
pub use push_sum::{PushSumConfig, PushSumOutcome};
pub use rumor::{RumorOutcome, SpreadOutcome, SpreadRounds};
pub use sampling::{SamplingConfig, SamplingOutcome};
