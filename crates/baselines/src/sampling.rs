//! Naive quantile approximation by independent sampling.
//!
//! Section 1 ("Technical Summary") of the paper: sampling `Θ(log n / ε²)`
//! values uniformly and independently at random and taking the φ-quantile of
//! the sample gives an ε-approximation of the φ-quantile with high
//! probability. Since a node can sample one value per round, this is an
//! `O(log n / ε²)`-round algorithm with `O(log n)`-bit messages — the
//! strawman that the tournament algorithms beat exponentially in `1/ε`.

use gossip_net::{Engine, EngineConfig, GossipError, Metrics, NodeValue, Result};

/// Returns the `⌈φ·m⌉`-th smallest element of a **sorted** non-empty slice
/// (the paper's definition of the φ-quantile), clamped to the valid range.
pub(crate) fn empirical_quantile<V: Copy>(sorted: &[V], phi: f64) -> V {
    debug_assert!(!sorted.is_empty());
    let m = sorted.len();
    let rank = (phi * m as f64).ceil() as usize;
    let rank = rank.clamp(1, m);
    sorted[rank - 1]
}

/// Configuration of the sampling baseline.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Target additive quantile error ε.
    pub epsilon: f64,
    /// Multiplier `c` in the sample size `⌈c · ln n / ε²⌉`.
    pub sample_factor: f64,
    /// Hard cap on the number of samples (= rounds), to keep runs bounded.
    pub max_samples: usize,
}

impl SamplingConfig {
    /// Configuration targeting additive error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(GossipError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0, 1), got {epsilon}"),
            });
        }
        Ok(SamplingConfig {
            epsilon,
            sample_factor: 2.0,
            max_samples: 1 << 16,
        })
    }

    /// Number of samples (and therefore rounds) for a network of `n` nodes.
    pub fn samples_for(&self, n: usize) -> usize {
        let n = n.max(2) as f64;
        let s = (self.sample_factor * n.ln() / (self.epsilon * self.epsilon)).ceil() as usize;
        s.clamp(1, self.max_samples)
    }
}

/// Result of the sampling baseline.
#[derive(Debug, Clone)]
pub struct SamplingOutcome<V> {
    /// Per-node estimate of the φ-quantile.
    pub estimates: Vec<V>,
    /// Rounds executed (equal to the per-node sample count).
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
}

/// Every node estimates the φ-quantile of `values` by uniform sampling.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given, or
/// [`GossipError::InvalidParameter`] if `phi` is not in `[0, 1]`.
pub fn approximate_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    config: &SamplingConfig,
    engine_config: EngineConfig,
) -> Result<SamplingOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let k = config.samples_for(values.len());
    let mut engine = Engine::from_states(values.to_vec(), engine_config);
    let mut samples = engine.collect_samples(k, |_, &v| v);
    let estimates: Vec<V> = samples
        .iter_mut()
        .enumerate()
        .map(|(v, s)| {
            // A node whose every pull failed falls back to its own value; with
            // k = Ω(log n) samples this happens with probability ≤ mu^k.
            if s.is_empty() {
                values[v]
            } else {
                s.sort_unstable();
                empirical_quantile(s, phi)
            }
        })
        .collect();
    Ok(SamplingOutcome {
        estimates,
        rounds: k as u64,
        metrics: engine.metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_quantile_matches_definition() {
        let sorted: Vec<u64> = (1..=10).collect();
        // ⌈0.5·10⌉ = 5th smallest = 5.
        assert_eq!(empirical_quantile(&sorted, 0.5), 5);
        assert_eq!(empirical_quantile(&sorted, 0.0), 1);
        assert_eq!(empirical_quantile(&sorted, 1.0), 10);
        assert_eq!(empirical_quantile(&sorted, 0.05), 1);
        assert_eq!(empirical_quantile(&sorted, 0.11), 2);
    }

    #[test]
    fn config_validates_epsilon() {
        assert!(SamplingConfig::new(0.0).is_err());
        assert!(SamplingConfig::new(1.0).is_err());
        assert!(SamplingConfig::new(0.1).is_ok());
    }

    #[test]
    fn sample_count_grows_with_accuracy() {
        let coarse = SamplingConfig::new(0.2).unwrap();
        let fine = SamplingConfig::new(0.02).unwrap();
        assert!(coarse.samples_for(1000) < fine.samples_for(1000));
    }

    #[test]
    fn rejects_bad_phi_and_tiny_networks() {
        let cfg = SamplingConfig::new(0.1).unwrap();
        assert!(approximate_quantile(&[1u64, 2], 1.5, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(approximate_quantile(&[1u64], 0.5, &cfg, EngineConfig::with_seed(0)).is_err());
    }

    #[test]
    fn median_estimate_is_close_for_uniform_values() {
        let values: Vec<u64> = (0..5000).collect();
        let cfg = SamplingConfig::new(0.05).unwrap();
        let out = approximate_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(11)).unwrap();
        assert_eq!(out.rounds as usize, cfg.samples_for(5000));
        // Every node's estimate should be within ~2ε·n ranks of the median.
        let n = values.len() as f64;
        for &e in &out.estimates {
            let rank = e as f64 / n; // values are 0..n, so value == rank here
            assert!((rank - 0.5).abs() < 0.1, "rank {rank}");
        }
    }

    #[test]
    fn extreme_quantiles_are_supported() {
        let values: Vec<u64> = (0..2000).collect();
        let cfg = SamplingConfig::new(0.1).unwrap();
        let lo = approximate_quantile(&values, 0.0, &cfg, EngineConfig::with_seed(3)).unwrap();
        let hi = approximate_quantile(&values, 1.0, &cfg, EngineConfig::with_seed(4)).unwrap();
        for &e in &lo.estimates {
            assert!(e < 400);
        }
        for &e in &hi.estimates {
            assert!(e > 1600);
        }
    }
}
