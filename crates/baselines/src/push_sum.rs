//! Push-sum aggregation (Kempe, Dobra, Gehrke; FOCS 2003).
//!
//! Every node `v` holds a pair `(s_v, w_v)`. In each round it splits both
//! components in half, keeps one half and pushes the other half to a uniformly
//! random node; received pairs are added component-wise. The estimate at node
//! `v` is `s_v / w_v`, which converges to `Σ s_u(0) / Σ w_u(0)` — the average
//! when all weights start at 1 — with relative error `ε` after
//! `O(log n + log 1/ε)` rounds with high probability.
//!
//! The quantile paper uses this primitive twice:
//! * Algorithm 3, Step 5 counts the rank of a value ("the sum can be
//!   aggregated in O(log n) rounds" \[KDG03\]), implemented here as
//!   [`count_matching`];
//! * the `O(log² n)` baseline ([`crate::kdg_selection`]) counts ranks in every
//!   iteration.
//!
//! **Robustness.** Under the failure model of Section 5, a node that fails
//! simply does not split this round (its outgoing half is returned to it), so
//! the protocol's mass conservation invariant `Σ s_v = const`, `Σ w_v = const`
//! is preserved and only convergence speed degrades — matching the discussion
//! in \[KDG03\] and Section 5.2 of the paper.

use gossip_net::{Engine, EngineConfig, GossipError, Metrics, Result};

/// State of one node during push-sum.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PushSumState {
    s: f64,
    w: f64,
    out_s: f64,
    out_w: f64,
}

gossip_net::columns! {
    /// Struct-of-arrays mirror of [`PushSumState`]: four parallel flat `f64`
    /// columns, so whole-network reductions over `s` / `w` (the estimate
    /// extraction) scan contiguous arrays that autovectorise instead of
    /// striding through the interleaved struct array.
    pub(crate) struct PushSumColumns for PushSumState { s: f64, w: f64, out_s: f64, out_w: f64 }
}

/// Configuration of a push-sum run.
#[derive(Debug, Clone)]
pub struct PushSumConfig {
    /// Number of rounds to run. `None` selects the default
    /// `ceil(c · (log2 n + log2(1/target_accuracy)))` with `c = 2`.
    pub rounds: Option<u64>,
    /// Target relative accuracy used to size the default round count.
    pub target_accuracy: f64,
}

impl Default for PushSumConfig {
    fn default() -> Self {
        PushSumConfig {
            rounds: None,
            target_accuracy: 1e-4,
        }
    }
}

impl PushSumConfig {
    /// Configuration that runs exactly `rounds` rounds.
    pub fn fixed_rounds(rounds: u64) -> Self {
        PushSumConfig {
            rounds: Some(rounds),
            target_accuracy: 1e-4,
        }
    }

    /// Number of rounds to run for a network of `n` nodes.
    pub fn rounds_for(&self, n: usize) -> u64 {
        match self.rounds {
            Some(r) => r,
            None => {
                let n = n.max(2) as f64;
                let acc = self.target_accuracy.clamp(1e-12, 0.5);
                (2.0 * (n.log2() + (1.0 / acc).log2())).ceil() as u64
            }
        }
    }
}

/// Result of a push-sum run.
#[derive(Debug, Clone)]
pub struct PushSumOutcome {
    /// Per-node estimates of the aggregate (average, sum or count depending on
    /// the entry point used).
    pub estimates: Vec<f64>,
    /// Rounds executed.
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
}

impl PushSumOutcome {
    /// The largest absolute deviation of any node's estimate from `truth`.
    pub fn max_absolute_error(&self, truth: f64) -> f64 {
        self.estimates
            .iter()
            .map(|e| (e - truth).abs())
            .fold(0.0, f64::max)
    }
}

fn run_push_sum(
    initial: Vec<(f64, f64)>,
    config: &PushSumConfig,
    engine_config: EngineConfig,
) -> PushSumOutcome {
    let n = initial.len();
    let states: Vec<PushSumState> = initial
        .into_iter()
        .map(|(s, w)| PushSumState {
            s,
            w,
            out_s: 0.0,
            out_w: 0.0,
        })
        .collect();
    let mut engine = Engine::from_states(states, engine_config);
    let rounds = config.rounds_for(n);

    for _ in 0..rounds {
        // Local half-split into the outbox.
        engine.local_step(|_, st, _rng| {
            st.out_s = st.s / 2.0;
            st.out_w = st.w / 2.0;
            st.s -= st.out_s;
            st.w -= st.out_w;
        });
        // Push the outbox; a failed push returns the mass to its owner so that
        // Σs and Σw are conserved exactly.
        engine.push_round(
            |_, st| Some((st.out_s, st.out_w)),
            |_, st, (ms, mw)| {
                st.s += ms;
                st.w += mw;
            },
            |_, st, delivered| {
                if !delivered {
                    st.s += st.out_s;
                    st.w += st.out_w;
                }
                st.out_s = 0.0;
                st.out_w = 0.0;
            },
        );
    }

    let metrics = engine.metrics();
    // Columnar extraction: split the final states into flat s / w columns and
    // divide them element-wise — two contiguous streams the compiler can
    // vectorise, versus a strided walk over the 4-field struct array.
    use gossip_net::soa::Columns as _;
    let cols = PushSumColumns::from_states(engine.states());
    let estimates = cols
        .s
        .iter()
        .zip(&cols.w)
        .map(|(&s, &w)| if w > 0.0 { s / w } else { 0.0 })
        .collect();
    PushSumOutcome {
        estimates,
        rounds,
        metrics,
    }
}

/// Estimates the **average** of `values` at every node.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn average(
    values: &[f64],
    config: &PushSumConfig,
    engine_config: EngineConfig,
) -> Result<PushSumOutcome> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    Ok(run_push_sum(
        values.iter().map(|&v| (v, 1.0)).collect(),
        config,
        engine_config,
    ))
}

/// Estimates the **sum** of `values` at every node.
///
/// Following \[KDG03\], the weight 1 starts at a single designated node
/// (node 0) and all other weights start at 0, so `s/w` converges to the sum.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn sum(
    values: &[f64],
    config: &PushSumConfig,
    engine_config: EngineConfig,
) -> Result<PushSumOutcome> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    let initial = values
        .iter()
        .enumerate()
        .map(|(v, &x)| (x, if v == 0 { 1.0 } else { 0.0 }))
        .collect();
    Ok(run_push_sum(initial, config, engine_config))
}

/// Estimates, at every node, the **number of nodes satisfying a predicate**.
///
/// This is the "counting" use of push-sum from Algorithm 3, Step 5: nodes
/// matching the predicate contribute 1, the others 0, and the average is
/// scaled by `n` (every node knows `n` in the model).
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two indicator values are given.
pub fn count_matching(
    indicators: &[bool],
    config: &PushSumConfig,
    engine_config: EngineConfig,
) -> Result<PushSumOutcome> {
    if indicators.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: indicators.len(),
        });
    }
    let n = indicators.len() as f64;
    let values: Vec<f64> = indicators
        .iter()
        .map(|&b| if b { 1.0 } else { 0.0 })
        .collect();
    let mut outcome = average(&values, config, engine_config)?;
    for e in &mut outcome.estimates {
        *e *= n;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    fn cfg(seed: u64) -> EngineConfig {
        EngineConfig::with_seed(seed)
    }

    #[test]
    fn rejects_tiny_networks() {
        assert!(average(&[1.0], &PushSumConfig::default(), cfg(0)).is_err());
        assert!(sum(&[], &PushSumConfig::default(), cfg(0)).is_err());
        assert!(count_matching(&[true], &PushSumConfig::default(), cfg(0)).is_err());
    }

    #[test]
    fn average_converges_everywhere() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let truth = 999.0 / 2.0;
        let out = average(&values, &PushSumConfig::default(), cfg(1)).unwrap();
        assert_eq!(out.estimates.len(), 1000);
        assert!(
            out.max_absolute_error(truth) < truth * 1e-3,
            "err {}",
            out.max_absolute_error(truth)
        );
    }

    #[test]
    fn sum_converges_everywhere() {
        let values: Vec<f64> = vec![2.0; 512];
        let out = sum(&values, &PushSumConfig::default(), cfg(2)).unwrap();
        assert!(
            out.max_absolute_error(1024.0) < 1.0,
            "err {}",
            out.max_absolute_error(1024.0)
        );
    }

    #[test]
    fn counting_is_accurate_enough_for_ranks() {
        // Rank counting needs the count to be right to within < 1 after
        // rounding, which is what Algorithm 3 Step 5 relies on.
        let indicators: Vec<bool> = (0..2000).map(|i| i % 3 == 0).collect();
        let truth = indicators.iter().filter(|&&b| b).count() as f64;
        let config = PushSumConfig {
            rounds: None,
            target_accuracy: 1e-6,
        };
        let out = count_matching(&indicators, &config, cfg(3)).unwrap();
        assert!(
            out.max_absolute_error(truth) < 0.5,
            "err {}",
            out.max_absolute_error(truth)
        );
    }

    #[test]
    fn rounds_default_scales_with_log_n_and_accuracy() {
        let c = PushSumConfig::default();
        assert!(c.rounds_for(1 << 10) < c.rounds_for(1 << 20));
        let coarse = PushSumConfig {
            rounds: None,
            target_accuracy: 1e-2,
        };
        let fine = PushSumConfig {
            rounds: None,
            target_accuracy: 1e-8,
        };
        assert!(coarse.rounds_for(1024) < fine.rounds_for(1024));
        assert_eq!(PushSumConfig::fixed_rounds(17).rounds_for(1 << 30), 17);
    }

    #[test]
    fn mass_is_conserved_under_failures() {
        // With a 30% failure rate the estimate still converges (more slowly),
        // because failed pushes return their mass to the sender.
        let values: Vec<f64> = (0..800).map(|i| (i % 10) as f64).collect();
        let truth = values.iter().sum::<f64>() / values.len() as f64;
        let config = PushSumConfig {
            rounds: Some(120),
            target_accuracy: 1e-6,
        };
        let engine_config = EngineConfig::with_seed(9).failure(FailureModel::uniform(0.3).unwrap());
        let out = average(&values, &config, engine_config).unwrap();
        assert!(
            out.max_absolute_error(truth) < 0.05,
            "err {}",
            out.max_absolute_error(truth)
        );
        assert!(out.metrics.failed_operations > 0);
    }

    #[test]
    fn metrics_report_push_rounds_and_small_messages() {
        let values: Vec<f64> = (0..128).map(|i| i as f64).collect();
        let out = average(&values, &PushSumConfig::fixed_rounds(10), cfg(4)).unwrap();
        assert_eq!(out.rounds, 10);
        assert_eq!(out.metrics.rounds, 10);
        // Push-sum messages are a pair of f64: 128 bits, i.e. O(log n)-sized.
        assert_eq!(out.metrics.max_message_bits, 128);
    }
}
