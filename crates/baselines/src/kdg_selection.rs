//! Exact quantile computation in `O(log² n)` rounds — the \[KDG03\] baseline.
//!
//! Kempe, Dobra and Gehrke observed that gossip primitives for *sampling* and
//! *counting* suffice to implement the classic randomized selection algorithm
//! \[Hoa61, FR75\]: repeatedly pick a uniformly random pivot among the values
//! still in play, count its rank with push-sum, and discard the half of the
//! candidate interval that cannot contain the target rank. Each iteration
//! costs `O(log n)` rounds (pivot dissemination + counting) and `O(log n)`
//! iterations suffice with high probability, for `O(log² n)` rounds overall —
//! the bound that Theorem 1.1 of the quantile paper improves quadratically.
//!
//! This is the main baseline of experiment E1.
//!
//! ## Faithfulness notes
//!
//! * Values are paired with their node id internally so that all keys are
//!   distinct (the papers assume distinct values w.l.o.g.).
//! * After every counting phase, each node holds its own push-sum estimate of
//!   the pivot's rank. The implementation takes the median of the per-node
//!   (rounded) estimates as the common decision; a real deployment would
//!   piggy-back this consensus on the next pivot dissemination at no extra
//!   asymptotic cost. The push-sum round budget is sized so that all estimates
//!   round to the true count with high probability. Setting
//!   [`KdgSelectionConfig::oracle_counting`] replaces the push-sum count with
//!   an exact oracle, isolating the effect of counting noise (ablation).

use crate::push_sum::{self, PushSumConfig};
use crate::rumor::{spread_max_tagged, spread_min_max, SpreadRounds};
use gossip_net::{EngineConfig, GossipError, Metrics, NodeValue, Result, SeedSequence};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the \[KDG03\] selection baseline.
#[derive(Debug, Clone)]
pub struct KdgSelectionConfig {
    /// Rounds used by every rumor-spreading phase.
    pub spread_rounds: SpreadRounds,
    /// Round budget for every push-sum counting phase (`None` = default
    /// `O(log n + log 1/acc)` with accuracy `0.25/n`, enough to round to the
    /// exact count w.h.p.).
    pub counting_rounds: Option<u64>,
    /// Use an exact counting oracle instead of push-sum (ablation only).
    pub oracle_counting: bool,
    /// Safety cap on the number of selection iterations.
    pub max_iterations: u64,
}

impl Default for KdgSelectionConfig {
    fn default() -> Self {
        KdgSelectionConfig {
            spread_rounds: SpreadRounds::default(),
            counting_rounds: None,
            oracle_counting: false,
            max_iterations: 400,
        }
    }
}

/// Result of the \[KDG03\] exact quantile computation.
#[derive(Debug, Clone)]
pub struct KdgSelectionOutcome<V> {
    /// The value of rank `⌈φ·n⌉` (identical at every node).
    pub answer: V,
    /// Selection iterations that were needed.
    pub iterations: u64,
    /// Total rounds consumed across all phases.
    pub rounds: u64,
    /// Aggregated communication metrics.
    pub metrics: Metrics,
}

/// Internal key: (value, node id) — all distinct.
type Key<V> = (V, u64);

fn median_rounded(estimates: &[f64]) -> u64 {
    let mut rounded: Vec<i64> = estimates.iter().map(|e| e.round() as i64).collect();
    rounded.sort_unstable();
    rounded[rounded.len() / 2].max(0) as u64
}

/// Computes the exact φ-quantile (the `⌈φ·n⌉`-th smallest value) of `values`
/// with the \[KDG03\] randomized-selection gossip algorithm.
///
/// # Errors
///
/// Returns an error if fewer than two values are given, `phi` is outside
/// `[0, 1]`, or the iteration cap is exceeded (which indicates a
/// mis-configured counting budget).
pub fn exact_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    config: &KdgSelectionConfig,
    engine_config: EngineConfig,
) -> Result<KdgSelectionOutcome<V>> {
    let n = values.len();
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let target_rank = ((phi * n as f64).ceil() as u64).clamp(1, n as u64);
    let keys: Vec<Key<V>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u64))
        .collect();

    let mut seeds = SeedSequence::new(engine_config.seed);
    let mut total_metrics = Metrics::default();
    let mut total_rounds = 0u64;
    let mut rng = SmallRng::seed_from_u64(seeds.next_seed());

    // Every selection phase runs on its own sub-engine; sharing one worker
    // pool (materialised here if the caller didn't supply one) means the
    // phases reuse one set of threads.
    let mut engine_config = engine_config;
    engine_config.ensure_pool_for(n);
    let sub_config = |seeds: &mut SeedSequence| engine_config.sub(seeds.next_seed());

    let counting_config = PushSumConfig {
        rounds: config.counting_rounds,
        target_accuracy: 0.25 / n as f64,
    };

    // Phase 0: learn the global extrema to initialise the candidate interval.
    let spread = spread_min_max(&keys, config.spread_rounds, sub_config(&mut seeds))?;
    total_metrics = total_metrics + spread.metrics;
    total_rounds += spread.rounds;
    let mut lo: Option<Key<V>> = None; // answer is strictly above lo
    let mut hi: Key<V> = *keys.iter().max().expect("non-empty");

    let mut iterations = 0u64;
    loop {
        if iterations >= config.max_iterations {
            return Err(GossipError::RoundBudgetExceeded {
                budget: config.max_iterations,
                phase: "KDG03 selection iterations",
            });
        }
        iterations += 1;

        // Pick a uniformly random pivot among the candidate keys in (lo, hi]:
        // every candidate draws a random tag, the maximum-tag value wins.
        // (The tag spread costs O(log n) rounds.)
        let tagged: Vec<(u64, Key<V>)> = keys
            .iter()
            .map(|&k| {
                let in_play = lo.map_or(true, |l| k > l) && k <= hi;
                let tag = if in_play { 1 + rng.gen::<u64>() / 2 } else { 0 };
                (tag, k)
            })
            .collect();
        let pivot_spread =
            spread_max_tagged(&tagged, config.spread_rounds, sub_config(&mut seeds))?;
        total_metrics = total_metrics + pivot_spread.metrics;
        total_rounds += pivot_spread.rounds;
        let (_, pivot) = *pivot_spread.max_at.first().expect("non-empty network");

        // Count rank(pivot) = #{keys ≤ pivot} with push-sum (Step "count").
        let count = if config.oracle_counting {
            keys.iter().filter(|&&k| k <= pivot).count() as u64
        } else {
            let indicators: Vec<bool> = keys.iter().map(|&k| k <= pivot).collect();
            let count_out =
                push_sum::count_matching(&indicators, &counting_config, sub_config(&mut seeds))?;
            total_metrics = total_metrics + count_out.metrics;
            total_rounds += count_out.rounds;
            median_rounded(&count_out.estimates)
        };

        if count == target_rank {
            // The pivot is the answer; disseminate it (already known to all via
            // the pivot spread of this iteration).
            return Ok(KdgSelectionOutcome {
                answer: pivot.0,
                iterations,
                rounds: total_rounds,
                metrics: total_metrics,
            });
        } else if count > target_rank {
            hi = pivot;
        } else {
            lo = Some(pivot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    fn sorted_rank(values: &[u64], phi: f64) -> u64 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((phi * values.len() as f64).ceil() as usize).clamp(1, values.len());
        sorted[rank - 1]
    }

    #[test]
    fn rejects_invalid_inputs() {
        let cfg = KdgSelectionConfig::default();
        assert!(exact_quantile(&[1u64], 0.5, &cfg, EngineConfig::with_seed(0)).is_err());
        assert!(exact_quantile(&[1u64, 2], 1.1, &cfg, EngineConfig::with_seed(0)).is_err());
    }

    #[test]
    fn finds_exact_median_with_oracle_counting() {
        let values: Vec<u64> = (0..501).map(|i| (i * 7919) % 100_000).collect();
        let cfg = KdgSelectionConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let out = exact_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.answer, sorted_rank(&values, 0.5));
        assert!(out.iterations <= 40);
    }

    #[test]
    fn finds_exact_quantiles_with_push_sum_counting() {
        let values: Vec<u64> = (0..400).map(|i| (i * 2654435761) % 1_000_003).collect();
        let cfg = KdgSelectionConfig::default();
        for (seed, phi) in [(2u64, 0.1f64), (3, 0.5), (4, 0.9)] {
            let out = exact_quantile(&values, phi, &cfg, EngineConfig::with_seed(seed)).unwrap();
            assert_eq!(out.answer, sorted_rank(&values, phi), "phi = {phi}");
        }
    }

    #[test]
    fn handles_duplicate_values() {
        let values: Vec<u64> = (0..300).map(|i| i % 10).collect();
        let cfg = KdgSelectionConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let out = exact_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(5)).unwrap();
        assert_eq!(out.answer, sorted_rank(&values, 0.5));
    }

    #[test]
    fn extreme_quantiles() {
        let values: Vec<u64> = (0..256).map(|i| i * 3 + 1).collect();
        let cfg = KdgSelectionConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let min = exact_quantile(&values, 0.0, &cfg, EngineConfig::with_seed(6)).unwrap();
        assert_eq!(min.answer, 1);
        let max = exact_quantile(&values, 1.0, &cfg, EngineConfig::with_seed(7)).unwrap();
        assert_eq!(max.answer, 255 * 3 + 1);
    }

    #[test]
    fn round_count_scales_quadratically_in_log_n() {
        // Not a precise asymptotic test, just the E1 "shape": rounds grow
        // clearly faster than a single log factor.
        let cfg = KdgSelectionConfig {
            oracle_counting: true,
            ..Default::default()
        };
        let run = |n: usize, seed: u64| {
            let values: Vec<u64> = (0..n as u64).map(|i| (i * 48271) % 1_000_000_007).collect();
            exact_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(seed))
                .unwrap()
                .rounds
        };
        let small = run(1 << 8, 8);
        let large = run(1 << 12, 9);
        assert!(
            large > small,
            "rounds should grow with n: {small} vs {large}"
        );
    }

    #[test]
    fn tolerates_failures() {
        let values: Vec<u64> = (0..300).map(|i| i * 13 % 4096).collect();
        let cfg = KdgSelectionConfig {
            spread_rounds: SpreadRounds::LogarithmicWithFactor(8.0),
            counting_rounds: Some(150),
            ..Default::default()
        };
        let engine_config =
            EngineConfig::with_seed(10).failure(FailureModel::uniform(0.2).unwrap());
        let out = exact_quantile(&values, 0.5, &cfg, engine_config).unwrap();
        assert_eq!(out.answer, sorted_rank(&values, 0.5));
        assert!(out.metrics.failed_operations > 0);
    }
}
