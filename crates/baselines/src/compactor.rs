//! The compaction-based sketching variant of Appendix A.1.
//!
//! Instead of storing the full doubling buffer (Appendix A), every node keeps
//! a bounded *compacted* buffer of `k = Θ(1/ε · (log log n + log 1/ε))`
//! entries, all carrying the same weight `2^h` where `h` is the number of
//! compactions applied. A compaction sorts the buffer and keeps the elements
//! at the even positions, doubling the weight — the classic compactor of the
//! streaming-sketch literature (\[MRL99\], \[KLL16\]) that the appendix adapts to
//! the gossip setting.
//!
//! Corollary A.4 bounds the rank error introduced by all compactions by
//! `n'/(2k) · log(n'/k)` where `n'` is the number of values represented; the
//! property tests in this module check that bound directly.

use crate::sampling::empirical_quantile;
use gossip_net::{Engine, EngineConfig, GossipError, MessageSize, Metrics, NodeValue, Result};

/// A weighted, bounded-size summary of a multiset of values.
///
/// All entries of a sketch share the same weight, which is always a power of
/// two (the number of values represented is `weight · entries.len()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactorSketch<V> {
    entries: Vec<V>,
    weight: u64,
    capacity: usize,
}

impl<V: NodeValue> CompactorSketch<V> {
    /// A sketch holding a single value with weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a compactor must be able to hold two values
    /// to compact).
    pub fn singleton(value: V, capacity: usize) -> Self {
        assert!(capacity >= 2, "compactor capacity must be at least 2");
        CompactorSketch {
            entries: vec![value],
            weight: 1,
            capacity,
        }
    }

    /// An empty sketch with weight 1.
    pub fn empty(capacity: usize) -> Self {
        assert!(capacity >= 2, "compactor capacity must be at least 2");
        CompactorSketch {
            entries: Vec::new(),
            weight: 1,
            capacity,
        }
    }

    /// Number of entries currently stored (≤ capacity after [`merge`](Self::merge)).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch stores no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The common weight of all stored entries.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Total number of (weighted) values represented by this sketch.
    pub fn represented(&self) -> u64 {
        self.weight * self.entries.len() as u64
    }

    /// Sorts the buffer and keeps the entries at the even positions
    /// (1-indexed), doubling the weight — the `Compact` operation of A.1.
    fn compact_once(&mut self) {
        self.entries.sort_unstable();
        let mut kept = Vec::with_capacity(self.entries.len() / 2 + 1);
        for (i, v) in self.entries.iter().enumerate() {
            if i % 2 == 1 {
                kept.push(*v);
            }
        }
        self.entries = kept;
        self.weight *= 2;
    }

    /// Merges `other` into `self`, compacting until the result fits in
    /// `capacity` entries.
    ///
    /// If the two sketches have different weights (which can only happen when
    /// failures made one node miss rounds), the lighter one is compacted until
    /// the weights match, so the "all entries share one weight" invariant is
    /// maintained.
    pub fn merge(&mut self, mut other: CompactorSketch<V>) {
        while self.weight < other.weight {
            self.compact_once();
        }
        while other.weight < self.weight {
            other.compact_once();
        }
        self.entries.extend_from_slice(&other.entries);
        while self.entries.len() > self.capacity {
            self.compact_once();
        }
    }

    /// The configured capacity (maximum entries after a merge).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Ingests one new observation into the sketch — the streaming entry
    /// point a holder uses between gossip epochs (the `quantile-gossip`
    /// service layer feeds per-holder updates through this).
    ///
    /// Equivalent to merging a weight-1 singleton: the new value joins the
    /// buffer at the sketch's current weight semantics, compacting as needed,
    /// so a holder's local stream and gossip-merged summaries go through the
    /// identical Appendix A.1 machinery (and the Corollary A.4 error bound
    /// applies unchanged).
    pub fn insert(&mut self, value: V) {
        self.merge(CompactorSketch::singleton(value, self.capacity));
    }

    /// The (weighted) number of represented values that are `≤ z`.
    pub fn rank(&self, z: &V) -> u64 {
        self.weight * self.entries.iter().filter(|&e| e <= z).count() as u64
    }

    /// The φ-quantile of the represented multiset (approximately).
    ///
    /// Returns `None` if the sketch is empty.
    pub fn quantile(&self, phi: f64) -> Option<V> {
        if self.entries.is_empty() {
            return None;
        }
        let mut sorted = self.entries.clone();
        sorted.sort_unstable();
        Some(empirical_quantile(&sorted, phi))
    }
}

impl<V: NodeValue> MessageSize for CompactorSketch<V> {
    fn message_bits(&self) -> u64 {
        // weight (64 bits) + length prefix + entries.
        64 + self.entries.message_bits()
    }
}

/// Configuration of the gossip compactor algorithm.
#[derive(Debug, Clone)]
pub struct CompactorConfig {
    /// Target additive quantile error ε.
    pub epsilon: f64,
    /// Multiplier on the buffer capacity `⌈c/ε · (log2 log2 n + log2 1/ε)⌉`.
    pub capacity_factor: f64,
    /// Multiplier on the represented-mass target `⌈c·ln n / ε²⌉` (same target
    /// as the doubling algorithm it simulates).
    pub mass_factor: f64,
}

impl CompactorConfig {
    /// Configuration targeting additive error `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError::InvalidParameter`] if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Result<Self> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(GossipError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in (0, 1), got {epsilon}"),
            });
        }
        Ok(CompactorConfig {
            epsilon,
            capacity_factor: 4.0,
            mass_factor: 2.0,
        })
    }

    /// Buffer capacity `k` for a network of `n` nodes.
    pub fn capacity_for(&self, n: usize) -> usize {
        let n = n.max(4) as f64;
        let loglog = n.log2().log2().max(1.0);
        let k = (self.capacity_factor / self.epsilon
            * (loglog + (1.0 / self.epsilon).log2().max(1.0)))
        .ceil() as usize;
        k.max(8)
    }

    /// Target represented mass (number of weighted samples) per node.
    pub fn target_mass(&self, n: usize) -> u64 {
        let n = n.max(2) as f64;
        (self.mass_factor * n.ln() / (self.epsilon * self.epsilon)).ceil() as u64
    }
}

/// Result of the gossip compactor algorithm.
#[derive(Debug, Clone)]
pub struct CompactorOutcome<V> {
    /// Per-node estimate of the φ-quantile.
    pub estimates: Vec<V>,
    /// Rounds executed.
    pub rounds: u64,
    /// Communication metrics (note `max_message_bits` vs the doubling algorithm).
    pub metrics: Metrics,
    /// The buffer capacity `k` that was used.
    pub capacity: usize,
}

/// Every node estimates the φ-quantile of `values` using bounded compactor
/// sketches exchanged by gossip (Appendix A.1).
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given, or
/// [`GossipError::InvalidParameter`] if `phi` is not in `[0, 1]`.
pub fn approximate_quantile<V: NodeValue>(
    values: &[V],
    phi: f64,
    config: &CompactorConfig,
    engine_config: EngineConfig,
) -> Result<CompactorOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    if !(0.0..=1.0).contains(&phi) {
        return Err(GossipError::InvalidParameter {
            name: "phi",
            reason: format!("must be in [0, 1], got {phi}"),
        });
    }
    let n = values.len();
    let capacity = config.capacity_for(n);
    let target_mass = config.target_mass(n);

    // State: (own value, sketch). Seed the sketch with one random pull.
    let states: Vec<(V, CompactorSketch<V>)> = values
        .iter()
        .map(|&v| (v, CompactorSketch::empty(capacity)))
        .collect();
    let mut engine = Engine::from_states(states, engine_config);
    engine.pull_round(
        |_, (own, _)| *own,
        |_, (own, sk), pulled| {
            sk.merge(CompactorSketch::singleton(pulled.unwrap_or(*own), capacity))
        },
    );

    let max_rounds = 2 * ((target_mass as f64).log2().ceil() as u64 + 2);
    let mut rounds = 1u64;
    while rounds < 1 + max_rounds {
        if engine
            .states()
            .iter()
            .all(|(_, sk)| sk.represented() >= target_mass)
        {
            break;
        }
        engine.pull_round(
            |_, (_, sk)| sk.clone(),
            |_, (_, sk), pulled| {
                if let Some(other) = pulled {
                    sk.merge(other);
                }
            },
        );
        rounds += 1;
    }

    let metrics = engine.metrics();
    let estimates = engine
        .into_states()
        .into_iter()
        .map(|(own, sk)| sk.quantile(phi).unwrap_or(own))
        .collect();
    Ok(CompactorOutcome {
        estimates,
        rounds,
        metrics,
        capacity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_empty_invariants() {
        let s = CompactorSketch::singleton(5u64, 8);
        assert_eq!(s.len(), 1);
        assert_eq!(s.weight(), 1);
        assert_eq!(s.represented(), 1);
        assert!(!s.is_empty());
        let e = CompactorSketch::<u64>::empty(8);
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_below_two_panics() {
        let _ = CompactorSketch::singleton(1u64, 1);
    }

    #[test]
    fn insert_is_singleton_merge() {
        let cap = 16;
        let mut streamed = CompactorSketch::empty(cap);
        let mut merged = CompactorSketch::empty(cap);
        for v in 0..500u64 {
            streamed.insert(v * 7 % 101);
            merged.merge(CompactorSketch::singleton(v * 7 % 101, cap));
        }
        assert_eq!(streamed, merged);
        assert!(streamed.len() <= cap);
        assert_eq!(streamed.capacity(), cap);
        // Corollary A.4 keeps the streamed sketch's rank answers useful: the
        // median of 500 ingested values stays within the compaction error
        // bound n'/(2k)·log2(n'/k) of the true median.
        let q = streamed.quantile(0.5).expect("non-empty");
        let exact: Vec<u64> = (0..500u64).map(|v| v * 7 % 101).collect();
        let true_rank = exact.iter().filter(|&&e| e <= q).count() as f64;
        let bound = 500.0 / (2.0 * cap as f64) * (500.0f64 / cap as f64).log2();
        assert!(
            (true_rank - 250.0).abs() <= bound + 250.0 * 0.25,
            "rank {true_rank} too far from 250 (bound {bound})"
        );
    }

    #[test]
    fn merge_respects_capacity() {
        let cap = 8;
        let mut acc = CompactorSketch::empty(cap);
        for v in 0..100u64 {
            acc.merge(CompactorSketch::singleton(v, cap));
        }
        assert!(acc.len() <= cap);
        assert!(acc.represented() <= 100);
        assert!(acc.weight().is_power_of_two());
    }

    #[test]
    fn balanced_tree_merge_preserves_most_mass() {
        // The gossip process merges similarly-sized sketches (buffer sizes
        // double each round), which is where the mass bound of Appendix A.1
        // applies: each compaction drops at most one (weighted) entry.
        let k = 16;
        let n_prime = 256usize;
        let mut leaves: Vec<CompactorSketch<u64>> = (0..n_prime as u64)
            .map(|v| CompactorSketch::singleton(v, k))
            .collect();
        while leaves.len() > 1 {
            let mut next = Vec::with_capacity(leaves.len() / 2);
            for pair in leaves.chunks(2) {
                let mut a = pair[0].clone();
                if pair.len() == 2 {
                    a.merge(pair[1].clone());
                }
                next.push(a);
            }
            leaves = next;
        }
        let total = leaves[0].represented();
        assert!(total >= (n_prime / 2) as u64, "represented {total}");
        assert!(total <= n_prime as u64);
    }

    #[test]
    fn rank_error_is_within_corollary_a4_bound() {
        // Merge n' singletons pairwise-balanced through a binary tree, as the
        // gossip process does, and check |rank_sketch - rank_true| ≤
        // n'/(2k)·log2(n'/k) + k (slack for the floor effects at small k).
        let k = 32;
        let n_prime = 1024usize;
        let mut leaves: Vec<CompactorSketch<u64>> = (0..n_prime as u64)
            .map(|v| CompactorSketch::singleton(v, k))
            .collect();
        while leaves.len() > 1 {
            let mut next = Vec::with_capacity(leaves.len() / 2);
            for pair in leaves.chunks(2) {
                if pair.len() == 2 {
                    let mut a = pair[0].clone();
                    a.merge(pair[1].clone());
                    next.push(a);
                } else {
                    next.push(pair[0].clone());
                }
            }
            leaves = next;
        }
        let sketch = &leaves[0];
        let bound =
            (n_prime as f64) / (2.0 * k as f64) * ((n_prime as f64) / k as f64).log2() + k as f64;
        for &z in &[100u64, 256, 500, 512, 700, 1000] {
            let true_rank = (z + 1) as f64; // values are 0..n', so rank(z) = z+1
            let sketch_rank = sketch.rank(&z) as f64;
            assert!(
                (sketch_rank - true_rank).abs() <= bound,
                "rank({z}): sketch {sketch_rank} vs true {true_rank}, bound {bound}"
            );
        }
    }

    #[test]
    fn gossip_compactor_estimates_median() {
        let values: Vec<u64> = (0..4000).collect();
        let cfg = CompactorConfig::new(0.1).unwrap();
        let out = approximate_quantile(&values, 0.5, &cfg, EngineConfig::with_seed(5)).unwrap();
        let n = values.len() as f64;
        let mut worst = 0.0f64;
        for &e in &out.estimates {
            worst = worst.max((e as f64 / n - 0.5).abs());
        }
        // Allow 2ε of slack: ε from sampling + ε from compaction.
        assert!(worst <= 0.2, "worst rank error {worst}");
        assert!(out.rounds <= 30);
    }

    #[test]
    fn compactor_messages_are_smaller_than_doubling_messages() {
        let values: Vec<u64> = (0..2000).collect();
        let ccfg = CompactorConfig::new(0.1).unwrap();
        let dcfg = crate::doubling::DoublingConfig::new(0.1).unwrap();
        let c = approximate_quantile(&values, 0.5, &ccfg, EngineConfig::with_seed(6)).unwrap();
        let d =
            crate::doubling::approximate_quantile(&values, 0.5, &dcfg, EngineConfig::with_seed(6))
                .unwrap();
        assert!(
            c.metrics.max_message_bits < d.metrics.max_message_bits / 2,
            "compactor {} vs doubling {}",
            c.metrics.max_message_bits,
            d.metrics.max_message_bits
        );
    }

    #[test]
    fn config_scales_capacity_with_epsilon() {
        let coarse = CompactorConfig::new(0.2).unwrap();
        let fine = CompactorConfig::new(0.02).unwrap();
        assert!(coarse.capacity_for(100_000) < fine.capacity_for(100_000));
        assert!(coarse.target_mass(100_000) < fine.target_mass(100_000));
        assert!(CompactorConfig::new(0.0).is_err());
    }

    /// Merging random values in random order never violates the capacity
    /// bound, keeps the weight a power of two, and keeps every stored entry a
    /// member of the input multiset (seeded sweep).
    #[test]
    fn random_merges_preserve_invariants() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x00c0_ffee_0001);
        for _ in 0..64 {
            let len = rng.gen_range(1usize..300);
            let cap = rng.gen_range(4usize..64);
            let values: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000_000u64)).collect();
            let mut acc = CompactorSketch::empty(cap);
            for &v in &values {
                acc.merge(CompactorSketch::singleton(v, cap));
                assert!(acc.len() <= cap.max(2), "len={len} cap={cap}");
                assert!(acc.weight().is_power_of_two(), "len={len} cap={cap}");
            }
            for e in &acc.entries {
                assert!(values.contains(e), "len={len} cap={cap}");
            }
        }
    }

    /// The sketch rank is monotone in its argument (seeded sweep).
    #[test]
    fn random_sketch_ranks_are_monotone() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x00c0_ffee_0002);
        for _ in 0..64 {
            let len = rng.gen_range(2usize..200);
            let mut acc = CompactorSketch::empty(16);
            for _ in 0..len {
                acc.merge(CompactorSketch::singleton(rng.gen_range(0..10_000u64), 16));
            }
            let mut prev = 0;
            for z in (0..10_000u64).step_by(500) {
                let r = acc.rank(&z);
                assert!(r >= prev, "len={len} z={z}");
                prev = r;
            }
        }
    }
}
