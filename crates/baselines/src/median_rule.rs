//! The 3-sample median rule of Doerr et al. \[DGM+11\].
//!
//! Every node repeatedly samples three random values and adopts their median.
//! Doerr et al. analysed this dynamic as a *stabilizing consensus* protocol and
//! showed that `O(log n)` iterations converge to a value within
//! `±O(√(log n)/√n · n)` ranks of the median even under `O(√n)` adversarial
//! node failures. The paper's 3-TOURNAMENT (Algorithm 2) is the same dynamic
//! run for only `O(log 1/ε + log log n)` iterations with a final sampling
//! step; this module provides the original rule as a baseline so the two can
//! be compared (experiment E9).

use gossip_net::{Engine, EngineConfig, GossipError, Metrics, NodeValue, Result};

/// Configuration of the median-rule baseline.
#[derive(Debug, Clone)]
pub struct MedianRuleConfig {
    /// Maximum number of median-of-three iterations (each costs 3 rounds).
    pub max_iterations: u64,
    /// Stop early once every node holds the same value.
    pub stop_on_consensus: bool,
}

impl Default for MedianRuleConfig {
    fn default() -> Self {
        MedianRuleConfig {
            max_iterations: 200,
            stop_on_consensus: true,
        }
    }
}

/// Result of running the median rule.
#[derive(Debug, Clone)]
pub struct MedianRuleOutcome<V> {
    /// Final value at every node.
    pub values: Vec<V>,
    /// Iterations executed (each iteration = 3 pull rounds).
    pub iterations: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Whether all nodes held the same value at the end.
    pub consensus: bool,
    /// Communication metrics.
    pub metrics: Metrics,
}

/// Returns the median of three values.
pub(crate) fn median3<V: Ord>(a: V, b: V, c: V) -> V {
    // max(min(a,b), min(max(a,b), c))
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if c <= lo {
        lo
    } else if c >= hi {
        hi
    } else {
        c
    }
}

/// Runs the Doerr et al. median rule on `values`.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn run<V: NodeValue>(
    values: &[V],
    config: &MedianRuleConfig,
    engine_config: EngineConfig,
) -> Result<MedianRuleOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    let mut engine = Engine::from_states(values.to_vec(), engine_config);
    let mut iterations = 0u64;
    let mut consensus = all_equal(engine.states());
    while iterations < config.max_iterations && !(config.stop_on_consensus && consensus) {
        // Three rounds of sampling against the iteration-start snapshot, then
        // a synchronous local update — exactly the paper's convention that
        // sampling three values costs three rounds.
        let samples = engine.collect_samples(3, |_, &v| v);
        engine.local_step(|v, state, _rng| {
            let s = &samples[v];
            *state = match s.len() {
                3 => median3(s[0], s[1], s[2]),
                2 => median3(s[0], s[1], *state),
                1 => median3(s[0], *state, *state),
                _ => *state,
            };
        });
        iterations += 1;
        consensus = all_equal(engine.states());
    }
    let metrics = engine.metrics();
    let rounds = metrics.rounds;
    Ok(MedianRuleOutcome {
        values: engine.into_states(),
        iterations,
        rounds,
        consensus,
        metrics,
    })
}

fn all_equal<V: PartialEq>(values: &[V]) -> bool {
    values.windows(2).all(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    #[test]
    fn median3_is_correct_for_all_orderings() {
        for perm in [
            [1, 2, 3],
            [1, 3, 2],
            [2, 1, 3],
            [2, 3, 1],
            [3, 1, 2],
            [3, 2, 1],
        ] {
            assert_eq!(median3(perm[0], perm[1], perm[2]), 2);
        }
        assert_eq!(median3(5, 5, 1), 5);
        assert_eq!(median3(1, 5, 5), 5);
        assert_eq!(median3(7, 7, 7), 7);
    }

    #[test]
    fn converges_to_a_near_median_value() {
        let n = 4096u64;
        let values: Vec<u64> = (0..n).collect();
        let out = run(
            &values,
            &MedianRuleConfig::default(),
            EngineConfig::with_seed(3),
        )
        .unwrap();
        assert!(
            out.consensus,
            "did not reach consensus in {} iterations",
            out.iterations
        );
        let v = out.values[0] as f64 / n as f64;
        // Doerr et al.: within O(sqrt(log n / n)) of the median; allow a wide
        // deterministic margin for a single run.
        assert!((v - 0.5).abs() < 0.1, "consensus value quantile {v}");
        // O(log n) iterations.
        assert!(out.iterations <= 60, "{} iterations", out.iterations);
        assert_eq!(out.rounds, out.metrics.rounds);
    }

    #[test]
    fn respects_iteration_cap() {
        let values: Vec<u64> = (0..128).collect();
        let cfg = MedianRuleConfig {
            max_iterations: 2,
            stop_on_consensus: true,
        };
        let out = run(&values, &cfg, EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.iterations, 2);
        assert_eq!(out.rounds, 6);
    }

    #[test]
    fn works_under_failures() {
        let values: Vec<u64> = (0..2048).collect();
        let cfg = MedianRuleConfig {
            max_iterations: 300,
            stop_on_consensus: true,
        };
        let engine_config = EngineConfig::with_seed(5).failure(FailureModel::uniform(0.3).unwrap());
        let out = run(&values, &cfg, engine_config).unwrap();
        assert!(out.consensus);
        let v = out.values[0] as f64 / 2048.0;
        assert!((v - 0.5).abs() < 0.15, "consensus value quantile {v}");
    }

    #[test]
    fn rejects_tiny_networks() {
        assert!(run::<u64>(
            &[1],
            &MedianRuleConfig::default(),
            EngineConfig::with_seed(0)
        )
        .is_err());
    }

    #[test]
    fn already_unanimous_input_terminates_immediately() {
        let values = vec![42u64; 64];
        let out = run(
            &values,
            &MedianRuleConfig::default(),
            EngineConfig::with_seed(0),
        )
        .unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.consensus);
        assert!(out.values.iter().all(|&v| v == 42));
    }
}
