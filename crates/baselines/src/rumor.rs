//! Push–pull rumor spreading of extremal values.
//!
//! Algorithm 3 (Step 4) requires every node to learn the global minimum and
//! maximum of a set of values, which the paper attributes to classic rumor
//! spreading: "Since it takes O(log n) rounds to spread a message by
//! \[FG85, Pit87\], this step can be done in O(log n) rounds." Under failures
//! the same bound holds with a constant-factor slow-down \[ES09\].
//!
//! The implementation here spreads the minimum and maximum simultaneously
//! (the message is the pair `(min, max)`, still `O(log n)` bits) using
//! push–pull rounds.
//!
//! [`spread_rumor`] is the *single-rumor* process the classic analyses are
//! actually about: only **informed** nodes act, so round `r` touches
//! `~min(2^r·|sources|, n)` nodes. It runs on the engine's sparse
//! [`push_round_on`](gossip_net::Engine::push_round_on) path with the
//! informed set as the [`ActiveSet`], grown in place from each round's
//! receiver list — per-round engine cost proportional to the informed
//! population. Total push activity to inform *everyone* is still
//! `Θ(n log n)` (the coupon-collector tail rounds each have `≈ n` informed
//! senders; that lower bound is about messages, not simulation overhead) —
//! what the sparse path eliminates is the dense engine's `Θ(n)`-per-round
//! cost during the doubling phase, where only `2^r` nodes actually act.
//! ([`spread_min_max`] stays dense: in min/max aggregation every node holds
//! information from round 0, so there is no sparse phase to exploit.)

use gossip_net::{
    ActiveSet, Engine, EngineConfig, GossipError, Metrics, NodeValue, Result, RoundProgram,
};

/// How long to run the spreading process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpreadRounds {
    /// Run exactly this many rounds (what a real deployment would do).
    Fixed(u64),
    /// Run `ceil(factor · log2 n)` rounds.
    LogarithmicWithFactor(f64),
}

impl Default for SpreadRounds {
    fn default() -> Self {
        // 4·log2 n push–pull rounds leave a per-node miss probability well
        // below 1/poly(n); with failures the caller should raise the factor
        // by 1/(1-mu).
        SpreadRounds::LogarithmicWithFactor(4.0)
    }
}

impl SpreadRounds {
    /// Number of rounds for a network of `n` nodes.
    ///
    /// The logarithmic budget **saturates** on pathological factors rather
    /// than trusting a raw `f64 → u64` cast: a `NaN` factor falls back to the
    /// one-round minimum, negative and sub-one products clamp to 1, and
    /// non-finite or `> u64::MAX` products clamp to `u64::MAX` (a budget the
    /// caller's loop will treat as "run forever", which is the honest reading
    /// of an infinite factor — not the wrapped/garbage count an unchecked
    /// cast could produce).
    pub fn rounds_for(&self, n: usize) -> u64 {
        match self {
            SpreadRounds::Fixed(r) => *r,
            SpreadRounds::LogarithmicWithFactor(f) => {
                let n = n.max(2) as f64;
                let rounds = (f * n.log2()).ceil();
                if rounds.is_nan() {
                    1
                } else if rounds >= u64::MAX as f64 {
                    u64::MAX
                } else {
                    // In-range cast: rounds < 2^64 here, so only the lower
                    // clamp can fire.
                    rounds.max(1.0) as u64
                }
            }
        }
    }
}

/// Outcome of spreading the global minimum and maximum.
#[derive(Debug, Clone)]
pub struct SpreadOutcome<V> {
    /// Per-node belief about the global minimum after spreading.
    pub min_at: Vec<V>,
    /// Per-node belief about the global maximum after spreading.
    pub max_at: Vec<V>,
    /// Rounds executed.
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
    /// Whether every node holds the true global extrema.
    pub complete: bool,
}

impl<V: NodeValue> SpreadOutcome<V> {
    /// The fraction of nodes that know both true extrema.
    pub fn coverage(&self, true_min: V, true_max: V) -> f64 {
        let n = self.min_at.len();
        let good = self
            .min_at
            .iter()
            .zip(&self.max_at)
            .filter(|(lo, hi)| **lo == true_min && **hi == true_max)
            .count();
        good as f64 / n as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct MinMaxState<V> {
    min: V,
    max: V,
}

/// Spreads the global minimum and maximum of `values` to every node by
/// push–pull gossip.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn spread_min_max<V: NodeValue>(
    values: &[V],
    rounds: SpreadRounds,
    engine_config: EngineConfig,
) -> Result<SpreadOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    let true_min = *values.iter().min().expect("non-empty");
    let true_max = *values.iter().max().expect("non-empty");
    let states: Vec<MinMaxState<V>> = values
        .iter()
        .map(|&v| MinMaxState { min: v, max: v })
        .collect();
    let mut engine = Engine::from_states(states, engine_config);
    let total_rounds = rounds.rounds_for(values.len());

    // A fixed schedule of identical push–pull rounds: record it once as a
    // round program and replay it fused (one pool dispatch for the whole
    // spread).
    let mut program: RoundProgram<'_, MinMaxState<V>> = RoundProgram::new();
    for _ in 0..total_rounds {
        program.push_pull(
            |_, st| (st.min, st.max),
            |_, st, (lo, hi)| {
                if lo < st.min {
                    st.min = lo;
                }
                if hi > st.max {
                    st.max = hi;
                }
            },
        );
    }
    engine.run_program(&mut program);

    let metrics = engine.metrics();
    let states = engine.into_states();
    let min_at: Vec<V> = states.iter().map(|st| st.min).collect();
    let max_at: Vec<V> = states.iter().map(|st| st.max).collect();
    let complete = min_at.iter().all(|&m| m == true_min) && max_at.iter().all(|&m| m == true_max);
    Ok(SpreadOutcome {
        min_at,
        max_at,
        rounds: total_rounds,
        metrics,
        complete,
    })
}

/// Outcome of spreading a single rumor from a source set.
#[derive(Debug, Clone)]
pub struct RumorOutcome {
    /// Whether each node is informed after the run.
    pub informed: Vec<bool>,
    /// Number of informed nodes after each executed round (index 0 is the
    /// state *before* the first round, i.e. the source count) — the `~2^r`
    /// growth curve the paper's `O(log n)` spreading bound describes.
    pub informed_per_round: Vec<usize>,
    /// Rounds executed (stops early once everyone is informed).
    pub rounds: u64,
    /// Communication metrics. Push rounds here are **sparse**: the per-round
    /// active count is the informed-set size, so `metrics.active_push_nodes`
    /// is the area under the informed curve — near zero through the doubling
    /// phase, `≈ n` per round in the completion tail.
    pub metrics: Metrics,
    /// Whether every node was informed within the budget.
    pub complete: bool,
}

/// Spreads a single rumor from `sources` by **push** gossip in which only
/// informed nodes act: round `r` costs `O(informed_r)` engine work, not
/// `O(n)` — the textbook "`~2^r` informed nodes in round `r`" process
/// \[FG85, Pit87\], executed on the engine's sparse
/// [`push_round_on`](gossip_net::Engine::push_round_on) path with the
/// informed [`ActiveSet`] grown in place from each round's receiver list.
///
/// Stops as soon as every node is informed (or after `rounds.rounds_for(n)`
/// rounds, whichever is first).
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if `n < 2`, or
/// [`GossipError::InvalidParameter`] if `sources` is empty or names a node
/// `>= n`.
pub fn spread_rumor(
    n: usize,
    sources: &[usize],
    rounds: SpreadRounds,
    engine_config: EngineConfig,
) -> Result<RumorOutcome> {
    if n < 2 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if sources.is_empty() {
        return Err(GossipError::InvalidParameter {
            name: "sources",
            reason: "rumor spreading needs at least one source".to_string(),
        });
    }
    let states: Vec<bool> = {
        let mut informed = vec![false; n];
        for &s in sources {
            if s >= n {
                return Err(GossipError::InvalidParameter {
                    name: "sources",
                    reason: format!("source {s} is out of range for an {n}-node network"),
                });
            }
            informed[s] = true;
        }
        informed
    };
    let mut active = ActiveSet::from_members(n, sources.iter().copied())?;
    let mut engine = Engine::from_states(states, engine_config);
    let budget = rounds.rounds_for(n);
    let mut informed_per_round = vec![active.len()];

    // One fused round program for the whole doubling process: the schedule
    // is data-dependent (each round's active set is grown from the previous
    // round's receivers, and the loop stops at full coverage), so the live
    // loop runs inside `Engine::fused` — the pool wakes once, every sparse
    // push dispatches as a resident phase, and the active-set union runs on
    // the session thread between phases. Bit-identical to the unfused loop.
    let mut executed = 0u64;
    engine.fused(|engine| {
        while executed < budget && active.len() < n {
            let out = engine.push_round_on(
                &active,
                // Every informed node pushes the one-bit rumor.
                |_, _| Some(true),
                |_, st, _| *st = true,
                |_, _, _| {},
            );
            executed += 1;
            active.union_sorted(&out.receivers);
            informed_per_round.push(active.len());
        }
    });

    let metrics = engine.metrics();
    let informed = engine.into_states();
    let complete = active.len() == n;
    Ok(RumorOutcome {
        informed,
        informed_per_round,
        rounds: executed,
        metrics,
        complete,
    })
}

/// Spreads an arbitrary per-node `u64` tag together with an associated value,
/// keeping the pair with the **largest tag**. Used by
/// [`crate::kdg_selection`] to agree on a uniformly random pivot: every
/// candidate draws a random tag and the network converges on the value of the
/// tag-maximal candidate.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two items are given.
pub fn spread_max_tagged<V: NodeValue>(
    tagged: &[(u64, V)],
    rounds: SpreadRounds,
    engine_config: EngineConfig,
) -> Result<SpreadOutcome<(u64, V)>> {
    if tagged.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: tagged.len(),
        });
    }
    let mut engine = Engine::from_states(tagged.to_vec(), engine_config);
    let total_rounds = rounds.rounds_for(tagged.len());
    // Fixed schedule → recorded program, replayed as one fused dispatch.
    let mut program: RoundProgram<'_, (u64, V)> = RoundProgram::new();
    for _ in 0..total_rounds {
        program.push_pull(
            |_, st| *st,
            |_, st, m| {
                if m > *st {
                    *st = m;
                }
            },
        );
    }
    engine.run_program(&mut program);
    let metrics = engine.metrics();
    let states = engine.into_states();
    let true_max = *tagged.iter().max().expect("non-empty");
    let complete = states.iter().all(|&s| s == true_max);
    Ok(SpreadOutcome {
        min_at: states.clone(),
        max_at: states,
        rounds: total_rounds,
        metrics,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    #[test]
    fn rejects_tiny_networks() {
        assert!(
            spread_min_max::<u64>(&[3], SpreadRounds::default(), EngineConfig::with_seed(0))
                .is_err()
        );
    }

    #[test]
    fn spreads_both_extrema_to_every_node() {
        let values: Vec<u64> = (0..4096).map(|i| i * 7 + 13).collect();
        let out =
            spread_min_max(&values, SpreadRounds::default(), EngineConfig::with_seed(5)).unwrap();
        assert!(out.complete);
        assert_eq!(out.coverage(13, 4095 * 7 + 13), 1.0);
        // O(log n): 4·log2(4096) = 48 rounds.
        assert_eq!(out.rounds, 48);
        assert_eq!(out.metrics.max_message_bits, 128);
    }

    #[test]
    fn fixed_round_budget_is_respected() {
        let values: Vec<u64> = (0..64).collect();
        let out =
            spread_min_max(&values, SpreadRounds::Fixed(2), EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.rounds, 2);
        // Two rounds cannot inform 64 nodes.
        assert!(!out.complete);
        assert!(out.coverage(0, 63) < 1.0);
    }

    #[test]
    fn survives_constant_failure_probability() {
        let values: Vec<u64> = (0..2048).collect();
        let cfg = EngineConfig::with_seed(3).failure(FailureModel::uniform(0.4).unwrap());
        // Inflate the round budget by 1/(1-mu) as the robust algorithms do.
        let out = spread_min_max(&values, SpreadRounds::LogarithmicWithFactor(8.0), cfg).unwrap();
        assert!(out.complete, "coverage {}", out.coverage(0, 2047));
    }

    #[test]
    fn tagged_spread_agrees_on_the_maximum_tag() {
        let tagged: Vec<(u64, u64)> = (0..512).map(|i| ((i * 2654435761) % 1000, i)).collect();
        let truth = *tagged.iter().max().unwrap();
        let out = spread_max_tagged(&tagged, SpreadRounds::default(), EngineConfig::with_seed(8))
            .unwrap();
        assert!(out.complete);
        assert!(out.max_at.iter().all(|&s| s == truth));
    }

    #[test]
    fn rounds_for_scales_logarithmically() {
        let r = SpreadRounds::LogarithmicWithFactor(3.0);
        assert_eq!(r.rounds_for(2), 3);
        assert_eq!(r.rounds_for(1 << 10), 30);
        assert_eq!(r.rounds_for(1 << 20), 60);
        assert_eq!(SpreadRounds::Fixed(7).rounds_for(1 << 20), 7);
    }

    #[test]
    fn rounds_for_saturates_on_pathological_factors() {
        // Non-finite and out-of-range factors must clamp, never wrap or
        // produce a garbage budget.
        assert_eq!(
            SpreadRounds::LogarithmicWithFactor(f64::NAN).rounds_for(1 << 10),
            1
        );
        assert_eq!(
            SpreadRounds::LogarithmicWithFactor(f64::INFINITY).rounds_for(1 << 10),
            u64::MAX
        );
        assert_eq!(
            SpreadRounds::LogarithmicWithFactor(f64::NEG_INFINITY).rounds_for(1 << 10),
            1
        );
        assert_eq!(
            SpreadRounds::LogarithmicWithFactor(-5.0).rounds_for(1 << 10),
            1
        );
        assert_eq!(SpreadRounds::LogarithmicWithFactor(0.0).rounds_for(4), 1);
        // Huge-but-finite factors land on the saturation ceiling too:
        // 1e30 · log2(1024) = 1e31 > u64::MAX.
        assert_eq!(
            SpreadRounds::LogarithmicWithFactor(1e30).rounds_for(1 << 10),
            u64::MAX
        );
        // Values just inside the range still round up normally.
        assert_eq!(SpreadRounds::LogarithmicWithFactor(0.05).rounds_for(4), 1);
        assert_eq!(SpreadRounds::LogarithmicWithFactor(1.5).rounds_for(4), 3);
    }

    #[test]
    fn rumor_reaches_everyone_and_counts_sparse_activity() {
        let n = 4096;
        let out = spread_rumor(
            n,
            &[17],
            SpreadRounds::default(),
            EngineConfig::with_seed(9),
        )
        .unwrap();
        assert!(out.complete);
        assert!(out.informed.iter().all(|&i| i));
        // O(log n) rounds with a healthy margin.
        assert!(out.rounds <= 48, "rounds = {}", out.rounds);
        // The growth curve starts at the source count, is monotone, and ends
        // at n.
        assert_eq!(out.informed_per_round[0], 1);
        assert!(out.informed_per_round.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*out.informed_per_round.last().unwrap(), n);
        // Sparse accounting: total push activity is the area under the
        // informed curve. The completion tail is coupon-collector (near-full
        // rounds), but the 2^r doubling phase is nearly free — so the total
        // is well below the dense n-per-round cost, and the first half of the
        // run is almost entirely saved.
        let m = out.metrics;
        assert_eq!(m.push_rounds, out.rounds);
        assert!(
            m.active_push_nodes < out.rounds * n as u64 * 3 / 4,
            "active pushes {} vs dense {}",
            m.active_push_nodes,
            out.rounds * n as u64
        );
        let first_half: usize = out.informed_per_round[..out.informed_per_round.len() / 2]
            .iter()
            .sum();
        assert!(
            (first_half as u64) < n as u64,
            "doubling phase touched {first_half} node-rounds"
        );
        assert!(m.max_active <= n as u64);
        // Doubling phase really is exponential at the start.
        assert!(out.informed_per_round[6] <= 64);
    }

    #[test]
    fn rumor_spreading_is_deterministic_and_stops_early() {
        let run = || {
            spread_rumor(
                2048,
                &[0, 1000],
                SpreadRounds::Fixed(10_000),
                EngineConfig::with_seed(4),
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.informed_per_round, b.informed_per_round);
        assert_eq!(a.rounds, b.rounds);
        // A huge Fixed budget still stops as soon as everyone is informed.
        assert!(a.complete);
        assert!(a.rounds < 60, "rounds = {}", a.rounds);
    }

    #[test]
    fn rumor_validates_inputs() {
        let cfg = EngineConfig::with_seed(0);
        assert!(spread_rumor(1, &[0], SpreadRounds::default(), cfg.clone()).is_err());
        assert!(spread_rumor(8, &[], SpreadRounds::default(), cfg.clone()).is_err());
        assert!(spread_rumor(8, &[8], SpreadRounds::default(), cfg).is_err());
    }

    #[test]
    fn rumor_respects_a_tight_round_budget() {
        let out = spread_rumor(
            1024,
            &[0],
            SpreadRounds::Fixed(3),
            EngineConfig::with_seed(2),
        )
        .unwrap();
        assert_eq!(out.rounds, 3);
        assert!(!out.complete);
        // At most 2^3 = 8 nodes can be informed after 3 push rounds.
        assert!(*out.informed_per_round.last().unwrap() <= 8);
    }
}
