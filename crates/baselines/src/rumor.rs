//! Push–pull rumor spreading of extremal values.
//!
//! Algorithm 3 (Step 4) requires every node to learn the global minimum and
//! maximum of a set of values, which the paper attributes to classic rumor
//! spreading: "Since it takes O(log n) rounds to spread a message by
//! \[FG85, Pit87\], this step can be done in O(log n) rounds." Under failures
//! the same bound holds with a constant-factor slow-down \[ES09\].
//!
//! The implementation here spreads the minimum and maximum simultaneously
//! (the message is the pair `(min, max)`, still `O(log n)` bits) using
//! push–pull rounds.

use gossip_net::{Engine, EngineConfig, GossipError, Metrics, NodeValue, Result};

/// How long to run the spreading process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpreadRounds {
    /// Run exactly this many rounds (what a real deployment would do).
    Fixed(u64),
    /// Run `ceil(factor · log2 n)` rounds.
    LogarithmicWithFactor(f64),
}

impl Default for SpreadRounds {
    fn default() -> Self {
        // 4·log2 n push–pull rounds leave a per-node miss probability well
        // below 1/poly(n); with failures the caller should raise the factor
        // by 1/(1-mu).
        SpreadRounds::LogarithmicWithFactor(4.0)
    }
}

impl SpreadRounds {
    /// Number of rounds for a network of `n` nodes.
    pub fn rounds_for(&self, n: usize) -> u64 {
        match self {
            SpreadRounds::Fixed(r) => *r,
            SpreadRounds::LogarithmicWithFactor(f) => {
                let n = n.max(2) as f64;
                (f * n.log2()).ceil().max(1.0) as u64
            }
        }
    }
}

/// Outcome of spreading the global minimum and maximum.
#[derive(Debug, Clone)]
pub struct SpreadOutcome<V> {
    /// Per-node belief about the global minimum after spreading.
    pub min_at: Vec<V>,
    /// Per-node belief about the global maximum after spreading.
    pub max_at: Vec<V>,
    /// Rounds executed.
    pub rounds: u64,
    /// Communication metrics.
    pub metrics: Metrics,
    /// Whether every node holds the true global extrema.
    pub complete: bool,
}

impl<V: NodeValue> SpreadOutcome<V> {
    /// The fraction of nodes that know both true extrema.
    pub fn coverage(&self, true_min: V, true_max: V) -> f64 {
        let n = self.min_at.len();
        let good = self
            .min_at
            .iter()
            .zip(&self.max_at)
            .filter(|(lo, hi)| **lo == true_min && **hi == true_max)
            .count();
        good as f64 / n as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct MinMaxState<V> {
    min: V,
    max: V,
}

/// Spreads the global minimum and maximum of `values` to every node by
/// push–pull gossip.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two values are given.
pub fn spread_min_max<V: NodeValue>(
    values: &[V],
    rounds: SpreadRounds,
    engine_config: EngineConfig,
) -> Result<SpreadOutcome<V>> {
    if values.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: values.len(),
        });
    }
    let true_min = *values.iter().min().expect("non-empty");
    let true_max = *values.iter().max().expect("non-empty");
    let states: Vec<MinMaxState<V>> = values
        .iter()
        .map(|&v| MinMaxState { min: v, max: v })
        .collect();
    let mut engine = Engine::from_states(states, engine_config);
    let total_rounds = rounds.rounds_for(values.len());

    for _ in 0..total_rounds {
        engine.push_pull_round(
            |_, st| (st.min, st.max),
            |_, st, (lo, hi)| {
                if lo < st.min {
                    st.min = lo;
                }
                if hi > st.max {
                    st.max = hi;
                }
            },
        );
    }

    let metrics = engine.metrics();
    let states = engine.into_states();
    let min_at: Vec<V> = states.iter().map(|st| st.min).collect();
    let max_at: Vec<V> = states.iter().map(|st| st.max).collect();
    let complete = min_at.iter().all(|&m| m == true_min) && max_at.iter().all(|&m| m == true_max);
    Ok(SpreadOutcome {
        min_at,
        max_at,
        rounds: total_rounds,
        metrics,
        complete,
    })
}

/// Spreads an arbitrary per-node `u64` tag together with an associated value,
/// keeping the pair with the **largest tag**. Used by
/// [`crate::kdg_selection`] to agree on a uniformly random pivot: every
/// candidate draws a random tag and the network converges on the value of the
/// tag-maximal candidate.
///
/// # Errors
///
/// Returns [`GossipError::TooFewNodes`] if fewer than two items are given.
pub fn spread_max_tagged<V: NodeValue>(
    tagged: &[(u64, V)],
    rounds: SpreadRounds,
    engine_config: EngineConfig,
) -> Result<SpreadOutcome<(u64, V)>> {
    if tagged.len() < 2 {
        return Err(GossipError::TooFewNodes {
            requested: tagged.len(),
        });
    }
    let mut engine = Engine::from_states(tagged.to_vec(), engine_config);
    let total_rounds = rounds.rounds_for(tagged.len());
    for _ in 0..total_rounds {
        engine.push_pull_round(
            |_, st| *st,
            |_, st, m| {
                if m > *st {
                    *st = m;
                }
            },
        );
    }
    let metrics = engine.metrics();
    let states = engine.into_states();
    let true_max = *tagged.iter().max().expect("non-empty");
    let complete = states.iter().all(|&s| s == true_max);
    Ok(SpreadOutcome {
        min_at: states.clone(),
        max_at: states,
        rounds: total_rounds,
        metrics,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_net::FailureModel;

    #[test]
    fn rejects_tiny_networks() {
        assert!(
            spread_min_max::<u64>(&[3], SpreadRounds::default(), EngineConfig::with_seed(0))
                .is_err()
        );
    }

    #[test]
    fn spreads_both_extrema_to_every_node() {
        let values: Vec<u64> = (0..4096).map(|i| i * 7 + 13).collect();
        let out =
            spread_min_max(&values, SpreadRounds::default(), EngineConfig::with_seed(5)).unwrap();
        assert!(out.complete);
        assert_eq!(out.coverage(13, 4095 * 7 + 13), 1.0);
        // O(log n): 4·log2(4096) = 48 rounds.
        assert_eq!(out.rounds, 48);
        assert_eq!(out.metrics.max_message_bits, 128);
    }

    #[test]
    fn fixed_round_budget_is_respected() {
        let values: Vec<u64> = (0..64).collect();
        let out =
            spread_min_max(&values, SpreadRounds::Fixed(2), EngineConfig::with_seed(1)).unwrap();
        assert_eq!(out.rounds, 2);
        // Two rounds cannot inform 64 nodes.
        assert!(!out.complete);
        assert!(out.coverage(0, 63) < 1.0);
    }

    #[test]
    fn survives_constant_failure_probability() {
        let values: Vec<u64> = (0..2048).collect();
        let cfg = EngineConfig::with_seed(3).failure(FailureModel::uniform(0.4).unwrap());
        // Inflate the round budget by 1/(1-mu) as the robust algorithms do.
        let out = spread_min_max(&values, SpreadRounds::LogarithmicWithFactor(8.0), cfg).unwrap();
        assert!(out.complete, "coverage {}", out.coverage(0, 2047));
    }

    #[test]
    fn tagged_spread_agrees_on_the_maximum_tag() {
        let tagged: Vec<(u64, u64)> = (0..512).map(|i| ((i * 2654435761) % 1000, i)).collect();
        let truth = *tagged.iter().max().unwrap();
        let out = spread_max_tagged(&tagged, SpreadRounds::default(), EngineConfig::with_seed(8))
            .unwrap();
        assert!(out.complete);
        assert!(out.max_at.iter().all(|&s| s == truth));
    }

    #[test]
    fn rounds_for_scales_logarithmically() {
        let r = SpreadRounds::LogarithmicWithFactor(3.0);
        assert_eq!(r.rounds_for(2), 3);
        assert_eq!(r.rounds_for(1 << 10), 30);
        assert_eq!(r.rounds_for(1 << 20), 60);
        assert_eq!(SpreadRounds::Fixed(7).rounds_for(1 << 20), 7);
    }
}
