//! Baselines off the complete graph: the topology configured on the
//! [`EngineConfig`] flows through every baseline unchanged, and the classic
//! complete-graph bounds stop holding exactly where mixing slows down.
//! (Everything is seed-deterministic, so these are replay checks.)

use baselines::rumor::{spread_min_max, SpreadRounds};
use gossip_net::{EngineConfig, Topology};

#[test]
fn rumor_spreading_completes_on_an_expander_in_logarithmic_rounds() {
    let n = 2_048usize;
    let values: Vec<u64> = (0..n as u64).collect();
    // The default 4·log2 n budget, proved for the complete graph, still
    // suffices on a bounded-degree random regular graph.
    let config = EngineConfig::with_seed(3).topology(Topology::random_regular(8, 5));
    let out = spread_min_max(&values, SpreadRounds::default(), config).unwrap();
    assert!(
        out.complete,
        "expander spread incomplete after {} rounds",
        out.rounds
    );
    assert_eq!(out.coverage(0, (n - 1) as u64), 1.0);
}

#[test]
fn rumor_spreading_on_a_thin_ring_misses_the_logarithmic_budget() {
    let n = 2_048usize;
    let values: Vec<u64> = (0..n as u64).collect();
    // On a k=1 ring the extrema move O(1) hops per round; the 4·log2 n ≈ 44
    // round budget cannot cover the Θ(n) diameter.
    let config = EngineConfig::with_seed(3).topology(Topology::ring(1));
    let out = spread_min_max(&values, SpreadRounds::default(), config).unwrap();
    assert!(
        !out.complete,
        "ring spread unexpectedly completed in {} rounds",
        out.rounds
    );
    assert!(out.coverage(0, (n - 1) as u64) < 0.5);
}
