//! # lower-bound
//!
//! Empirical companion to Theorem 1.3: the `Ω(log log n + log 1/ε)` lower
//! bound for ε-approximate quantile computation by any gossip algorithm.
//!
//! The paper's argument (Section 4) constructs two input scenarios that differ
//! only on a set `S` of `2⌊2εn⌋` nodes holding extreme values; any algorithm
//! that answers correctly with probability noticeably above 1/2 must deliver
//! information from `S` to *every* node. Tracking the set of "good" (informed)
//! nodes round by round shows this takes `Ω(log(1/ε))` rounds while the
//! informed set grows geometrically, plus `Ω(log log n)` rounds for the last
//! uninformed nodes to disappear (their fraction only squares per round even
//! with unlimited message sizes and push+pull in the same round).
//!
//! [`spreading_rounds`] simulates exactly that best-case information-spreading
//! process — every node pushes *and* pulls every round, messages are
//! unbounded, failures are absent — and reports how many rounds it takes until
//! every node is informed. Experiment E6 compares the measured rounds against
//! the theorem's `½·log₂log₂ n + log₄(8/ε)` barrier: no quantile algorithm can
//! finish before an (idealised) spreading process does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gossip_net::{Engine, EngineConfig, GossipError, Result};

/// Result of one information-spreading simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadingOutcome {
    /// Number of nodes.
    pub n: usize,
    /// Number of initially informed nodes (`2⌊2εn⌋`, at least 1).
    pub initially_informed: usize,
    /// Rounds until every node was informed.
    pub rounds_to_all_informed: u64,
    /// Rounds until at least half the nodes were informed.
    pub rounds_to_half_informed: u64,
    /// The theoretical barrier `½·log₂log₂ n + log₄(8/ε)` of Theorem 1.3.
    pub theorem_barrier: f64,
}

/// The lower-bound barrier of Theorem 1.3 for the given `n` and `ε`:
/// `½·log₂log₂ n + log₄(8/ε)` rounds.
pub fn theorem_barrier(n: usize, epsilon: f64) -> f64 {
    let n = n.max(4) as f64;
    0.5 * n.log2().log2() + (8.0 / epsilon).log(4.0)
}

/// Simulates the idealised information-spreading process of Section 4 and
/// returns how long it takes to inform every node.
///
/// Every round, every node contacts one uniformly random node in each
/// direction (push and pull); a node becomes informed as soon as it touches an
/// informed node. This is the most generous setting the lower bound allows
/// (unbounded messages, no failures), so the measured round count is a valid
/// lower bound on any ε-approximate quantile algorithm's round count.
///
/// # Errors
///
/// Returns an error if `n < 4` or `ε ∉ (0, 1/8)`.
pub fn spreading_rounds(n: usize, epsilon: f64, seed: u64) -> Result<SpreadingOutcome> {
    if n < 4 {
        return Err(GossipError::TooFewNodes { requested: n });
    }
    if !(epsilon > 0.0 && epsilon < 0.125) {
        return Err(GossipError::InvalidParameter {
            name: "epsilon",
            reason: format!("Theorem 1.3 assumes epsilon in (0, 1/8), got {epsilon}"),
        });
    }
    let informed_count = (2 * ((2.0 * epsilon * n as f64).floor() as usize)).clamp(1, n - 1);

    // State: whether the node has (directly or transitively) heard from S.
    let states: Vec<bool> = (0..n).map(|v| v < informed_count).collect();
    let mut engine = Engine::from_states(states, EngineConfig::with_seed(seed));

    let mut rounds_to_half = None;
    let mut round = 0u64;
    // log2(n)+log(1/eps) rounds are already far beyond what full push-pull
    // spreading needs; the cap only guards against pathological inputs.
    let cap = 4 * ((n as f64).log2().ceil() as u64 + (1.0 / epsilon).log2().ceil() as u64) + 32;
    while engine.states().iter().any(|&informed| !informed) {
        engine.push_pull_round(|_, &informed| informed, |_, st, other| *st = *st || other);
        round += 1;
        let informed = engine.states().iter().filter(|&&i| i).count();
        if rounds_to_half.is_none() && informed * 2 >= n {
            rounds_to_half = Some(round);
        }
        if round >= cap {
            break;
        }
    }

    Ok(SpreadingOutcome {
        n,
        initially_informed: informed_count,
        rounds_to_all_informed: round,
        rounds_to_half_informed: rounds_to_half.unwrap_or(round),
        theorem_barrier: theorem_barrier(n, epsilon),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_inputs() {
        assert!(spreading_rounds(2, 0.01, 0).is_err());
        assert!(spreading_rounds(1000, 0.0, 0).is_err());
        assert!(spreading_rounds(1000, 0.2, 0).is_err());
    }

    #[test]
    fn barrier_grows_with_n_and_with_one_over_epsilon() {
        assert!(theorem_barrier(1 << 20, 0.01) > theorem_barrier(1 << 10, 0.01));
        assert!(theorem_barrier(1 << 16, 0.001) > theorem_barrier(1 << 16, 0.1));
    }

    #[test]
    fn spreading_takes_more_rounds_for_smaller_epsilon() {
        let coarse = spreading_rounds(1 << 14, 0.1, 1).unwrap();
        let fine = spreading_rounds(1 << 14, 0.001, 1).unwrap();
        assert!(fine.initially_informed < coarse.initially_informed);
        assert!(
            fine.rounds_to_all_informed >= coarse.rounds_to_all_informed,
            "{} vs {}",
            fine.rounds_to_all_informed,
            coarse.rounds_to_all_informed
        );
    }

    #[test]
    fn spreading_completes_and_roughly_tracks_the_barrier() {
        for (n, eps) in [(1usize << 12, 0.05f64), (1 << 16, 0.02), (1 << 14, 0.004)] {
            let out = spreading_rounds(n, eps, 7).unwrap();
            assert!(out.rounds_to_all_informed > 0);
            // The measured idealised process is within a small constant factor
            // of the Theorem 1.3 barrier (it is Θ(log log n + log 1/ε)).
            let barrier = out.theorem_barrier;
            let measured = out.rounds_to_all_informed as f64;
            assert!(
                measured >= 0.5 * barrier,
                "n={n} eps={eps}: {measured} vs {barrier}"
            );
            assert!(
                measured <= 6.0 * barrier + 10.0,
                "n={n} eps={eps}: {measured} vs {barrier}"
            );
        }
    }

    #[test]
    fn half_informed_is_reached_before_fully_informed() {
        let out = spreading_rounds(1 << 15, 0.01, 3).unwrap();
        assert!(out.rounds_to_half_informed <= out.rounds_to_all_informed);
        assert!(out.initially_informed < (1 << 15) / 2);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = spreading_rounds(1 << 13, 0.02, 11).unwrap();
        let b = spreading_rounds(1 << 13, 0.02, 11).unwrap();
        assert_eq!(a, b);
    }
}
