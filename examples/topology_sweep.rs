//! Topology sweep: the same approximate-quantile algorithm on four
//! communication graphs — where does the paper's complete-graph assumption
//! matter?
//!
//! ```text
//! cargo run --release --example topology_sweep
//! ```
//!
//! The paper proves Theorem 2.1 for uniform gossip on the complete graph.
//! This example runs the identical tournament algorithm with the engine's
//! pluggable topology swapped underneath it (`EngineConfig::topology`):
//! a bounded-degree random-regular expander keeps complete-graph-like
//! accuracy (the Becchetti–Clementi–Natale phenomenon), while ring and torus
//! — whose neighbourhoods mix too slowly — visibly lose the rank guarantee.
//! The full measurement grid lives in `bench/benches/topology_quantile.rs`
//! (`BENCH_topology.json`).

use gossip_quantiles::measure::report::round_budget_table;
use gossip_quantiles::measure::{RankOracle, Table, Workload};
use gossip_quantiles::quantile::approx::{tournament_quantile, TournamentConfig};
use gossip_quantiles::{EngineConfig, Topology};

fn main() -> gossip_quantiles::Result<()> {
    let n = 10_000;
    let phi = 0.5;
    let epsilon = 0.05;
    let values = Workload::UniformDistinct.generate(n, 42);
    let oracle = RankOracle::new(&values);

    println!(
        "{n} nodes, target: median ± {:.0}% ranks, tournament algorithm (Theorem 2.1)\n",
        epsilon * 100.0
    );

    let topologies = [
        Topology::Complete,
        Topology::random_regular(16, 7),
        Topology::ring(2),
        Topology::Torus2D,
    ];

    let mut accuracy = Table::new(
        "accuracy per topology",
        &[
            "topology",
            "rounds",
            "mean rank err",
            "max rank err",
            "within eps",
        ],
    );
    let mut budgets = Vec::new();
    for topology in topologies {
        let config = EngineConfig::with_seed(1).topology(topology);
        let out = tournament_quantile(&values, phi, epsilon, &TournamentConfig::default(), config)?;
        let errs: Vec<f64> = out
            .outputs
            .iter()
            .map(|o| oracle.quantile_error(o, phi).abs())
            .collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0, f64::max);
        let within = errs.iter().filter(|&&e| e <= epsilon).count() as f64 / errs.len() as f64;
        accuracy.add_row(&[
            topology.to_string(),
            out.rounds.to_string(),
            format!("{mean:.4}"),
            format!("{max:.4}"),
            format!("{:.1}%", within * 100.0),
        ]);
        budgets.push((topology.to_string(), out.metrics));
    }
    println!("{}", accuracy.render());

    // The same runs, broken down by round primitive (the per-kind counters
    // the engine meters): the tournament phases are pull rounds throughout,
    // so the budget is identical across topologies — only accuracy moves.
    println!(
        "{}",
        round_budget_table("round budget per topology", &budgets).render()
    );

    println!(
        "The expander tracks the complete graph; ring and torus lose the\n\
         guarantee — the complete-graph assumption is load-bearing exactly\n\
         where neighbourhood mixing is slower than the tournament schedule."
    );
    Ok(())
}
