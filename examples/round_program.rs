//! Round programs: record a multi-round gossip schedule once, replay it as
//! **one** worker-pool dispatch.
//!
//! The paper's algorithms run hundreds of very short rounds (Theorems
//! 1.2/1.3 prove `O(log n)`-round budgets), so at small `n` the engine's
//! per-round worker hand-off — wake every worker, run a few microseconds of
//! round body, put every worker back to sleep — costs more than the rounds
//! themselves. A [`RoundProgram`] records the schedule's steps up front;
//! [`Engine::run_program`] then wakes the workers once and runs every round
//! as a phase of one resident session, synchronising on a spin-then-park
//! barrier. Results are bit-identical to the loop — this example proves it
//! on its own run — only the scheduling counters and the wall clock change.
//!
//! ```text
//! cargo run --release --example round_program
//! ```

use gossip_quantiles::{Engine, EngineConfig, RoundProgram};
use std::time::Instant;

/// Max-spreading pull: after O(log n) rounds every node holds the maximum.
fn record_schedule(program: &mut RoundProgram<'_, u64>, rounds: usize) {
    for _ in 0..rounds {
        program.pull(
            |_, &v| v,
            |_, state, pulled| {
                if let Some(p) = pulled {
                    *state = (*state).max(p);
                }
            },
        );
    }
}

fn engine(n: usize, threads: usize) -> Engine<u64> {
    let mut e = Engine::from_states((0..n as u64).collect(), EngineConfig::with_seed(7));
    e.set_threads(threads);
    e
}

fn main() {
    let n = 4_000;
    let threads = 2;
    let rounds = 128;

    // Looped: every round is its own pool dispatch.
    let mut looped = engine(n, threads);
    let start = Instant::now();
    for _ in 0..rounds {
        looped.pull_round(
            |_, &v| v,
            |_, state, pulled| {
                if let Some(p) = pulled {
                    *state = (*state).max(p);
                }
            },
        );
    }
    let loop_time = start.elapsed();

    // Fused: the same schedule, recorded and replayed as one session.
    let mut fused = engine(n, threads);
    let mut program: RoundProgram<'_, u64> = RoundProgram::new();
    record_schedule(&mut program, rounds);
    let start = Instant::now();
    fused.run_program(&mut program);
    let program_time = start.elapsed();

    let lm = looped.metrics();
    let fm = fused.metrics();
    println!("{rounds} pull rounds over n = {n} nodes, {threads} threads\n");
    println!(
        "  looped : {loop_time:>10.3?}  ({} pool dispatches, {} worker wakeups)",
        lm.pool_dispatches, lm.worker_wakeups
    );
    println!(
        "  fused  : {program_time:>10.3?}  ({} pool dispatch,   {} worker wakeups)",
        fm.pool_dispatches, fm.worker_wakeups
    );
    println!(
        "\n  speedup {:.2}x, dispatches reduced {}x",
        loop_time.as_secs_f64() / program_time.as_secs_f64().max(f64::EPSILON),
        lm.pool_dispatches / fm.pool_dispatches.max(1)
    );

    // The whole point is that fusion is *only* a scheduling change: the two
    // engines ran bit-identical executions.
    assert_eq!(looped.states(), fused.states());
    assert_eq!(looped.metrics(), fused.metrics()); // == ignores scheduling counters
    assert_eq!(looped.states().iter().max(), Some(&(n as u64 - 1)));
    println!("  final states identical: true");

    // A program is replayable: the next epoch reuses the recorded schedule
    // (fresh deterministic randomness — rounds advance the engine's counter).
    let before = fused.round();
    fused.run_program(&mut program);
    assert_eq!(fused.round(), before + rounds as u64);
    println!(
        "  replayed the same program: rounds {} -> {}",
        before,
        fused.round()
    );
}
