//! Corollary 1.5: every node estimates its own quantile/rank up to ±ε by
//! running O(1/ε) approximate quantile computations, in
//! (1/ε)·O(log log n + log 1/ε) rounds — used here to build a decentralized
//! "percentile report" of response latencies.
//!
//! ```text
//! cargo run --release --example rank_estimation
//! ```

use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::{estimate_own_quantiles, EngineConfig, OwnRankConfig};

fn main() -> gossip_quantiles::Result<()> {
    let n = 30_000;
    let epsilon = 0.1;

    // Heavy-tailed "latency" values: most small, a few enormous.
    let latencies = Workload::HeavyTail.generate(n, 3);
    let oracle = RankOracle::new(&latencies);

    let out = estimate_own_quantiles(
        &latencies,
        epsilon,
        &OwnRankConfig::default(),
        EngineConfig::with_seed(5),
    )?;
    println!(
        "{n} nodes estimated their own percentile with {} gossip threshold computations in {} rounds",
        out.thresholds, out.rounds
    );

    // Accuracy report.
    let mut worst = 0.0f64;
    let mut sum = 0.0f64;
    for (v, &estimate) in out.quantiles.iter().enumerate() {
        let truth = oracle.quantile_of(&latencies[v]);
        let err = (estimate - truth).abs();
        worst = worst.max(err);
        sum += err;
    }
    println!(
        "estimation error: mean {:.3}, worst {:.3} (target ±{epsilon})",
        sum / n as f64,
        worst
    );

    // Example use: nodes that believe they are above the 90th percentile
    // could throttle themselves; count how accurate that self-selection is.
    let self_selected: Vec<usize> = (0..n).filter(|&v| out.quantiles[v] >= 0.9).collect();
    let truly_high = self_selected
        .iter()
        .filter(|&&v| oracle.quantile_of(&latencies[v]) >= 0.9 - epsilon)
        .count();
    println!(
        "{} nodes self-identified as top-10%; {:.1}% of them are within epsilon of being correct",
        self_selected.len(),
        100.0 * truly_high as f64 / self_selected.len().max(1) as f64
    );
    Ok(())
}
