//! The motivating scenario from the paper's introduction: a sensor network
//! monitoring temperature, where the top and bottom 10% of readings need
//! special attention. Each sensor learns the 10%- and 90%-quantiles by gossip
//! and decides locally which band it belongs to.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::{approximate_quantile, ApproxConfig, EngineConfig};

fn main() -> gossip_quantiles::Result<()> {
    let n = 50_000;
    let epsilon = 0.02;

    // Synthetic temperature field with two hot spots (values in centi-degrees C).
    let readings = Workload::SensorField.generate(n, 7);
    let oracle = RankOracle::new(&readings);

    // Two gossip computations: the 10%- and the 90%-quantile.
    let low = approximate_quantile(
        &readings,
        0.1,
        epsilon,
        &ApproxConfig::default(),
        EngineConfig::with_seed(10),
    )?;
    let high = approximate_quantile(
        &readings,
        0.9,
        epsilon,
        &ApproxConfig::default(),
        EngineConfig::with_seed(11),
    )?;
    println!(
        "{n} sensors; 10%-quantile ≈ {:.2}°C, 90%-quantile ≈ {:.2}°C ({} + {} rounds)",
        low.outputs[0] as f64 / 100.0,
        high.outputs[0] as f64 / 100.0,
        low.rounds,
        high.rounds
    );

    // Each sensor classifies itself purely from what it learned by gossip.
    let mut cold = 0usize;
    let mut hot = 0usize;
    for (i, &reading) in readings.iter().enumerate() {
        if reading <= low.outputs[i] {
            cold += 1;
        } else if reading >= high.outputs[i] {
            hot += 1;
        }
    }
    println!(
        "sensors self-classified: {cold} cold-band ({:.1}%), {hot} hot-band ({:.1}%)",
        100.0 * cold as f64 / n as f64,
        100.0 * hot as f64 / n as f64
    );

    // Sanity check against the centralised ground truth.
    println!(
        "ground truth for reference: 10% = {:.2}°C, 90% = {:.2}°C",
        oracle.quantile(0.1) as f64 / 100.0,
        oracle.quantile(0.9) as f64 / 100.0
    );
    Ok(())
}
