//! Theorem 1.4: the robust tournament algorithm keeps working when every node
//! fails a large fraction of its rounds. This example sweeps the failure
//! probability μ and reports coverage and accuracy.
//!
//! ```text
//! cargo run --release --example failure_robustness
//! ```

use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::{robust_approximate_quantile, EngineConfig, FailureModel, RobustConfig};

fn main() -> gossip_quantiles::Result<()> {
    let n = 40_000;
    let phi = 0.5;
    let epsilon = 0.08;
    let values = Workload::Bimodal.generate(n, 13);
    let oracle = RankOracle::new(&values);

    println!("robust median computation over {n} nodes, eps = {epsilon}");
    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>10} {:>12}",
        "mu", "pulls/iter", "rounds", "answered", "good", "within eps"
    );
    for mu in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let config = RobustConfig::default();
        let engine =
            EngineConfig::with_seed(100 + (mu * 10.0) as u64).failure(FailureModel::uniform(mu)?);
        let out = robust_approximate_quantile(&values, phi, epsilon, &config, engine)?;
        let within = out
            .outputs
            .iter()
            .flatten()
            .filter(|o| oracle.within_epsilon(o, phi, epsilon + 0.02))
            .count();
        let answered = out.outputs.iter().flatten().count();
        println!(
            "{:<6} {:>10} {:>8} {:>9.1}% {:>9.1}% {:>11.1}%",
            mu,
            config.pulls_for(mu),
            out.rounds,
            100.0 * out.answered_fraction,
            100.0 * out.good_fraction,
            100.0 * within as f64 / answered.max(1) as f64
        );
    }
    println!("\n(The round count grows by ~1/(1-mu) while accuracy is preserved — Theorem 1.4.)");
    Ok(())
}
