//! Theorem 1.4: the robust tournament algorithm keeps working when every node
//! fails a large fraction of its rounds — and, with a `FaultPlan`, when the
//! network also loses messages, churns nodes, and delays deliveries.
//!
//! Three acts:
//!
//! 1. sweep the Section 5 failure probability μ (the setting the theorem is
//!    proved in) and report coverage and accuracy;
//! 2. run the full chaos plan — churn + loss + stragglers + failures — and
//!    show the fault ledger the run absorbed (`report::fault_table`);
//! 3. compare the fixed `O(1/(1−μ))` schedule against the self-adapting one
//!    under a plan whose derivable bound is pessimistic.
//!
//! ```text
//! cargo run --release --example failure_robustness
//! ```

use gossip_quantiles::measure::report::fault_table;
use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::{
    robust_approximate_quantile, ChurnModel, EngineConfig, FailureModel, FaultPlan, LossModel,
    RobustConfig, StragglerModel,
};

fn main() -> gossip_quantiles::Result<()> {
    let n = 40_000;
    let phi = 0.5;
    let epsilon = 0.08;
    let values = Workload::Bimodal.generate(n, 13);
    let oracle = RankOracle::new(&values);
    let grade = |out: &gossip_quantiles::quantile::robust::RobustOutcome<u64>| {
        let answered = out.outputs.iter().flatten().count();
        let within = out
            .outputs
            .iter()
            .flatten()
            .filter(|o| oracle.within_epsilon(o, phi, epsilon + 0.02))
            .count();
        100.0 * within as f64 / answered.max(1) as f64
    };

    // Act 1: the paper's failure model alone, swept over μ.
    println!("robust median computation over {n} nodes, eps = {epsilon}");
    println!(
        "{:<6} {:>10} {:>8} {:>10} {:>10} {:>12}",
        "mu", "pulls/iter", "rounds", "answered", "good", "within eps"
    );
    for mu in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let config = RobustConfig::default();
        let plan = FaultPlan::none().with_failure(FailureModel::uniform(mu)?);
        let engine = EngineConfig::with_seed(100 + (mu * 10.0) as u64).fault(plan);
        let out = robust_approximate_quantile(&values, phi, epsilon, &config, engine)?;
        println!(
            "{:<6} {:>10} {:>8} {:>9.1}% {:>9.1}% {:>11.1}%",
            mu,
            config.pulls_for(mu),
            out.rounds,
            100.0 * out.answered_fraction,
            100.0 * out.good_fraction,
            grade(&out)
        );
    }
    println!("(The round count grows by ~1/(1-mu) while accuracy is preserved — Theorem 1.4.)\n");

    // Act 2: the full chaos plan. Churn silences whole nodes for rounds at a
    // time, loss eats messages, stragglers displace deliveries; the union
    // bound `FaultPlan::mu_upper_bound` provisions the pull budget.
    let chaos = FaultPlan::none()
        .with_churn(ChurnModel::with_rejoin(0.05, 2)?)
        .with_loss(LossModel::uniform(0.1)?)
        .with_stragglers(StragglerModel::uniform(0.2, 3)?)
        .with_failure(FailureModel::uniform(0.1)?);
    let bound = chaos.mu_upper_bound().expect("rejoin churn has a bound");
    let out = robust_approximate_quantile(
        &values,
        phi,
        epsilon,
        &RobustConfig::default(),
        EngineConfig::with_seed(7).fault(chaos.clone()),
    )?;
    println!(
        "full chaos plan (union bound mu <= {bound:.3}): rounds = {}, \
         answered = {:.1}%, within eps = {:.1}%",
        out.rounds,
        100.0 * out.answered_fraction,
        grade(&out)
    );
    let table = fault_table(
        "absorbed faults",
        &[("robust median".to_string(), out.metrics)],
    );
    println!("\n{}", table.render());

    // Act 3: fixed vs adaptive. The same plan's stragglers never disturb the
    // pull-only robust algorithm, so the fixed schedule over-pays for them
    // while the adaptive one converges to the observed disturbance.
    println!("fixed vs adaptive schedule under the same plan:");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>14}",
        "schedule", "rounds", "answered", "within eps", "estimated mu"
    );
    for (label, adaptive) in [("fixed", false), ("adaptive", true)] {
        let config = RobustConfig {
            adaptive,
            ..RobustConfig::default()
        };
        let out = robust_approximate_quantile(
            &values,
            phi,
            epsilon,
            &config,
            EngineConfig::with_seed(7).fault(chaos.clone()),
        )?;
        println!(
            "{:<10} {:>8} {:>9.1}% {:>11.1}% {:>14.3}",
            label,
            out.rounds,
            100.0 * out.answered_fraction,
            grade(&out),
            out.estimated_mu
        );
    }
    println!("\n(The adaptive budget pays for the measured disturbance, not the union bound.)");
    Ok(())
}
