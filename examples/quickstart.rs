//! Quickstart: compute exact and approximate quantiles over a simulated
//! gossip network and compare the rounds they need.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gossip_quantiles::measure::{RankOracle, Workload};
use gossip_quantiles::{
    approximate_quantile, exact_quantile, ApproxConfig, EngineConfig, NarrowingConfig,
};

fn main() -> gossip_quantiles::Result<()> {
    let n = 100_000;
    let phi = 0.9;
    let epsilon = 0.05;

    // Every node of the network holds one value.
    let values = Workload::UniformDistinct.generate(n, 42);
    let oracle = RankOracle::new(&values);
    println!(
        "network of {n} nodes, target: the {:.0}th percentile",
        phi * 100.0
    );
    println!("ground truth (centralised sort): {}", oracle.quantile(phi));

    // Approximate quantile (Theorem 1.2): O(log log n + log 1/eps) rounds.
    let approx = approximate_quantile(
        &values,
        phi,
        epsilon,
        &ApproxConfig::default(),
        EngineConfig::with_seed(1),
    )?;
    let sample_output = approx.outputs[0];
    println!(
        "approximate ({:>3} rounds): node 0 outputs {} (true quantile position {:.3})",
        approx.rounds,
        sample_output,
        oracle.quantile_of(&sample_output)
    );
    let all_within = approx
        .outputs
        .iter()
        .all(|o| oracle.within_epsilon(o, phi, epsilon));
    println!("  every node within ±{epsilon}: {all_within}");

    // Exact quantile (Theorem 1.1): O(log n) rounds.
    let exact = exact_quantile(
        &values,
        phi,
        &NarrowingConfig::default(),
        EngineConfig::with_seed(2),
    )?;
    println!(
        "exact       ({:>3} rounds): answer {} (matches ground truth: {})",
        exact.rounds,
        exact.answer,
        exact.answer == oracle.quantile(phi)
    );
    println!(
        "message sizes stayed at {} bits (O(log n))",
        exact
            .metrics
            .max_message_bits
            .max(approx.metrics.max_message_bits)
    );
    Ok(())
}
